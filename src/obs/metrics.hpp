// Metrics primitives for the observability layer.
//
// A MetricsRegistry is a named collection of counters, gauges, and
// log-bucketed latency histograms. Producers (NIC models, the cluster
// harness, benchmarks) publish into a registry that the consumer owns;
// nothing in the simulator allocates or records unless a registry was
// attached, so the data path stays byte-identical with observability off.
//
// Naming convention (see docs/OBSERVABILITY.md): lower_snake metric names,
// scoped by "/"-joined prefixes, coarsest first — "node0/nic.frags_tx",
// "node1/vi3/rtt_ns", "bench.pingpong/latency_ns". The registry itself
// treats names as opaque keys; scopes exist so renderText() groups related
// metrics and trajectory tooling can diff stable keys.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vibe::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed histogram of non-negative integer samples (latencies in
/// nanoseconds by convention).
//
// Bucketing is HDR-style: values below 2^kSubBits get exact unit buckets;
// above that, each power-of-two octave is split into 2^kSubBits sub-buckets,
// so relative bucket error is bounded by 1/2^kSubBits (~12.5%) at any
// magnitude. Samples beyond kMaxValue land in a terminal overflow bucket
// (and are counted separately); quantiles clamp to the recorded min/max, so
// single-sample and extreme queries are exact.
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr std::uint64_t kMaxValue = 1ull << 62;

  /// Records one sample; negative values clamp to zero.
  void add(std::int64_t value);

  std::size_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Samples that exceeded kMaxValue and were clamped into the overflow
  /// bucket (still included in count/sum/max).
  std::uint64_t overflowCount() const { return overflow_; }

  /// q in [0,1]; interpolates inside the covering bucket and clamps to the
  /// recorded [min, max]. Returns 0 when empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Merges another histogram into this one.
  void merge(const Histogram& other);

  void clear();

  /// Samples strictly greater than `threshold`, at bucket resolution:
  /// counts every bucket whose lower bound exceeds the threshold, plus an
  /// interpolation-free inclusion of the covering bucket when the
  /// threshold sits below its upper bound is deliberately avoided — the
  /// answer is exact whenever `threshold` is a bucket boundary and within
  /// one bucket otherwise. The SLO monitor's burn rate is built on this.
  std::uint64_t countAbove(std::uint64_t threshold) const;

  /// Raw bucket counts, index-aligned with bucketBounds(). The vector is
  /// only as long as the highest occupied bucket. Exposed so rolling-
  /// window consumers (SloMonitor) can diff successive snapshots.
  const std::vector<std::uint64_t>& bucketCounts() const { return buckets_; }

  /// Bucket index for a value (exposed for tests).
  static std::size_t bucketIndex(std::uint64_t value);
  /// Inclusive [lo, hi] value range of a bucket (exposed for tests).
  static void bucketBounds(std::size_t index, std::uint64_t& lo,
                           std::uint64_t& hi);

 private:
  std::vector<std::uint64_t> buckets_;  // grown lazily to the highest index
  std::size_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
  std::uint64_t overflow_ = 0;
};

/// Named metrics, created on first use. Iteration is name-ordered, so
/// rendered output and JSON emission are deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Merges another registry into this one: counters add, histograms
  /// merge bucket-wise, gauges take the other's value (last write wins,
  /// so merging shard registries in shard order reproduces the serial
  /// write order). The sweep harness merges per-shard registries through
  /// this after a parallel run; shard registries must no longer be
  /// written when called.
  void mergeFrom(const MetricsRegistry& other);

  /// Aligned text dump: counters, then gauges, then histograms with
  /// count/mean/p50/p99/max columns (nanosecond samples shown in usec).
  std::string renderText() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Renders a registry as the schema-2 JSON the bench trajectory tooling
/// consumes: {"schema":2,"counters":{...},"gauges":{...},"histograms":
/// {name:{count,min,max,sum,mean,p50,p99,p999}}}. Names are escaped;
/// iteration is name-ordered, so output is deterministic. Used by
/// VIBE_METRICS_OUT (see bench_common.hpp and docs/OBSERVABILITY.md).
std::string renderMetricsJson(const MetricsRegistry& registry);

/// Joins scope and name with the conventional "/" separator.
inline std::string scoped(std::string_view scope, std::string_view name) {
  std::string out;
  out.reserve(scope.size() + 1 + name.size());
  out.append(scope);
  out.push_back('/');
  out.append(name);
  return out;
}

}  // namespace vibe::obs
