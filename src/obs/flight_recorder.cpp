#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/json.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"

namespace vibe::obs {

bool FlightRecorder::dump(const std::string& reason) {
  std::ostringstream os;
  os << "{\n\"reason\": \"" << jsonEscape(reason) << "\",\n\"dump\": "
     << (dumps_ + 1) << ",\n\"windows\": {";
  if (sampler_ != nullptr) {
    os << "\n  \"dropped\": " << sampler_->droppedWindows()
       << ",\n  \"t_ns\": [";
    for (std::size_t w = 0; w < sampler_->windowCount(); ++w) {
      os << (w ? "," : "") << sampler_->windowTime(w);
    }
    os << "],\n  \"series\": {";
    for (std::size_t s = 0; s < sampler_->seriesCount(); ++s) {
      os << (s ? ",\n" : "\n") << "    \""
         << jsonEscape(sampler_->seriesName(s)) << "\": [";
      for (std::size_t w = 0; w < sampler_->windowCount(); ++w) {
        os << (w ? "," : "") << jsonNumber(sampler_->value(w, s));
      }
      os << "]";
    }
    os << (sampler_->seriesCount() ? "\n  " : "") << "}\n";
  }
  os << "},\n\"slo\": [";
  if (slo_ != nullptr) {
    bool first = true;
    for (const SloMonitor::Window& w : slo_->windows()) {
      os << (first ? "\n" : ",\n") << "  {\"t_ns\": " << w.t
         << ", \"count\": " << w.count << ", \"p50\": " << jsonNumber(w.p50)
         << ", \"p99\": " << jsonNumber(w.p99)
         << ", \"p999\": " << jsonNumber(w.p999)
         << ", \"over\": " << w.overThreshold
         << ", \"burn\": " << jsonNumber(w.burnRate) << "}";
      first = false;
    }
    os << (first ? "" : "\n");
  }
  os << "],\n\"trace\": [";
  if (tracer_ != nullptr) {
    bool first = true;
    for (const sim::TraceRecord& r : tracer_->snapshot()) {
      os << (first ? "\n" : ",\n") << "  {\"t_ns\": " << r.time
         << ", \"cat\": \"" << jsonEscape(sim::toString(r.category))
         << "\", \"component\": " << r.component << ", \"message\": \""
         << jsonEscape(r.message) << "\"}";
      first = false;
    }
    os << (first ? "" : "\n");
  }
  os << "]\n}\n";

  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "flight_recorder: cannot open %s\n", path_.c_str());
    return false;
  }
  const std::string body = os.str();
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) ==
                     body.size();
  const bool ok = std::fclose(f) == 0 && wrote;
  if (ok) {
    ++dumps_;
    std::fprintf(stderr, "flight_recorder: wrote %s (%s)\n", path_.c_str(),
                 reason.c_str());
  }
  return ok;
}

const char* FlightRecorder::envPath() {
  const char* v = std::getenv("VIBE_FLIGHT_OUT");
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

std::unique_ptr<FlightRecorder> FlightRecorder::fromEnv() {
  const char* path = envPath();
  if (path == nullptr) return nullptr;
  return std::make_unique<FlightRecorder>(path);
}

}  // namespace vibe::obs
