#include "obs/trace_export.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/json.hpp"

namespace vibe::obs {

namespace {

/// Trace-event timestamps are microseconds; ns-resolution sim times render
/// with three decimals so nothing is lost.
void appendUsec(std::ostringstream& os, sim::SimTime t) {
  os << t / 1000 << '.';
  const auto frac = static_cast<int>(t % 1000);
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void TraceJsonExporter::instant(const sim::TraceRecord& r) {
  std::ostringstream os;
  os << "{\"name\":\"" << jsonEscape(r.message) << "\",\"cat\":\""
     << sim::toString(r.category) << "\",\"ph\":\"i\",\"s\":\"p\",\"ts\":";
  appendUsec(os, r.time);
  os << ",\"pid\":" << r.component << ",\"tid\":0}";
  events_.push_back(os.str());
}

void TraceJsonExporter::span(const SpanEvent& e) {
  std::ostringstream os;
  // Stage names come from an enum toString and contain no specials, but
  // they go through the same escape as every other name on principle.
  os << "{\"name\":\"" << jsonEscape(toString(e.stage))
     << "\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":";
  appendUsec(os, e.begin);
  os << ",\"dur\":";
  appendUsec(os, e.end - e.begin);
  os << ",\"pid\":" << e.node << ",\"tid\":" << e.vi
     << ",\"args\":{\"bytes\":" << e.bytes << "}}";
  events_.push_back(os.str());
}

void TraceJsonExporter::counter(std::string_view track, sim::SimTime t,
                                double value, std::uint32_t pid) {
  if (!(value == value)) value = 0.0;  // no NaN literal in JSON
  std::ostringstream os;
  os << "{\"name\":\"" << jsonEscape(track)
     << "\",\"cat\":\"timeseries\",\"ph\":\"C\",\"ts\":";
  appendUsec(os, t);
  os << ",\"pid\":" << pid << ",\"tid\":0,\"args\":{\"value\":"
     << jsonNumber(value) << "}}";
  events_.push_back(os.str());
}

void TraceJsonExporter::exportSpans(const SpanProfiler& profiler) {
  for (const SpanEvent& e : profiler.events()) span(e);
}

bool TraceJsonExporter::finish() {
  if (finished_) return true;
  finished_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_export: cannot open %s\n", path_.c_str());
    return false;
  }
  std::fputs("{\"traceEvents\":[", f);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i != 0) std::fputc(',', f);
    std::fputs("\n", f);
    std::fputs(events_[i].c_str(), f);
  }
  std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

const char* TraceJsonExporter::envPath() {
  const char* v = std::getenv("VIBE_TRACE_OUT");
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

std::unique_ptr<TraceJsonExporter> TraceJsonExporter::fromEnv() {
  const char* path = envPath();
  if (path == nullptr) return nullptr;
  return std::make_unique<TraceJsonExporter>(path);
}

}  // namespace vibe::obs
