// Flight recorder: post-mortem dump of the observability rings.
//
// A FlightRecorder holds pointers to the bounded in-memory histories the
// other obs components already retain — the TimeSeriesSampler's last N
// sample windows, an SloMonitor's window history, and the Tracer's
// record ring — and serializes them all to one JSON file on demand.
// "On demand" is the failure path: fault::InvariantChecker calls its
// violation hook on the first violation, and benches call dump() when
// they abort (e.g. bench_ext_pdes on determinism divergence), so the
// file shows what the system looked like in the windows leading up to
// the failure. Activated via VIBE_FLIGHT_OUT=<path> (fromEnv), or
// constructed directly in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "simcore/trace.hpp"

namespace vibe::obs {

class TimeSeriesSampler;
class SloMonitor;

class FlightRecorder {
 public:
  explicit FlightRecorder(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  /// Sources are optional; null ones are omitted from the dump. All must
  /// outlive the recorder's use.
  void setSampler(const TimeSeriesSampler* sampler) { sampler_ = sampler; }
  void setSlo(const SloMonitor* slo) { slo_ = slo; }
  void setTracer(const sim::Tracer* tracer) { tracer_ = tracer; }

  /// Writes the dump file, overwriting a previous one (the latest
  /// failure wins; dumps() counts how many were written). Returns false
  /// on I/O failure. `reason` is recorded verbatim (escaped) in the file.
  bool dump(const std::string& reason);

  std::uint32_t dumps() const { return dumps_; }

  /// A hook suitable for fault::InvariantChecker::setViolationHook.
  std::function<void(const std::string&)> violationHook() {
    return [this](const std::string& what) { dump(what); };
  }

  /// VIBE_FLIGHT_OUT destination, or nullptr when unset/empty.
  static const char* envPath();
  /// Recorder for VIBE_FLIGHT_OUT, or null when the env var is unset.
  static std::unique_ptr<FlightRecorder> fromEnv();

 private:
  std::string path_;
  const TimeSeriesSampler* sampler_ = nullptr;
  const SloMonitor* slo_ = nullptr;
  const sim::Tracer* tracer_ = nullptr;
  std::uint32_t dumps_ = 0;
};

}  // namespace vibe::obs
