#include "mem/tlb.hpp"

#include <algorithm>

namespace vibe::mem {

bool Tlb::lookup(std::uint64_t page) {
  auto it = map_.find(page);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void Tlb::insert(std::uint64_t page) {
  if (capacity_ == 0) return;
  auto it = map_.find(page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
  pagesSeenMin_ = std::min(pagesSeenMin_, page);
  pagesSeenMax_ = std::max(pagesSeenMax_, page);
}

void Tlb::invalidateRange(std::uint64_t firstPage, std::uint64_t lastPage) {
  if (map_.empty() || lastPage < firstPage) return;
  // Hull check: pagesSeen* track the widest range ever inserted, so a
  // deregistration of pages the cache has never held costs O(1) instead of
  // a full LRU walk (the Fig. 2 extended 32 MB sweep hits this constantly).
  if (firstPage > pagesSeenMax_ || lastPage < pagesSeenMin_) return;
  const std::uint64_t span = lastPage - firstPage + 1;
  if (span <= map_.size()) {
    // Narrow range: probe each page directly instead of scanning the LRU.
    for (std::uint64_t page = firstPage; page <= lastPage; ++page) {
      auto it = map_.find(page);
      if (it == map_.end()) continue;
      lru_.erase(it->second);
      map_.erase(it);
    }
    return;
  }
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (*it >= firstPage && *it <= lastPage) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void Tlb::flush() {
  lru_.clear();
  map_.clear();
  pagesSeenMin_ = ~std::uint64_t{0};
  pagesSeenMax_ = 0;
}

}  // namespace vibe::mem
