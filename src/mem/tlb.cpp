#include "mem/tlb.hpp"

namespace vibe::mem {

bool Tlb::lookup(std::uint64_t page) {
  auto it = map_.find(page);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void Tlb::insert(std::uint64_t page) {
  if (capacity_ == 0) return;
  auto it = map_.find(page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
}

void Tlb::invalidateRange(std::uint64_t firstPage, std::uint64_t lastPage) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (*it >= firstPage && *it <= lastPage) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void Tlb::flush() {
  lru_.clear();
  map_.clear();
}

}  // namespace vibe::mem
