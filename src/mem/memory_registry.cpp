#include "mem/memory_registry.hpp"

namespace vibe::mem {

const char* toString(MemStatus s) {
  switch (s) {
    case MemStatus::Ok: return "Ok";
    case MemStatus::InvalidHandle: return "InvalidHandle";
    case MemStatus::InvalidPtag: return "InvalidPtag";
    case MemStatus::ProtectionMismatch: return "ProtectionMismatch";
    case MemStatus::OutOfRange: return "OutOfRange";
    case MemStatus::AccessDenied: return "AccessDenied";
    case MemStatus::PtagInUse: return "PtagInUse";
    case MemStatus::ZeroLength: return "ZeroLength";
  }
  return "Unknown";
}

PtagId MemoryRegistry::createPtag() {
  const PtagId tag = nextPtag_++;
  ptags_.insert(tag);
  return tag;
}

MemStatus MemoryRegistry::destroyPtag(PtagId ptag) {
  auto it = ptags_.find(ptag);
  if (it == ptags_.end()) return MemStatus::InvalidPtag;
  auto refs = ptagRefs_.find(ptag);
  if (refs != ptagRefs_.end() && refs->second > 0) return MemStatus::PtagInUse;
  ptags_.erase(it);
  ptagRefs_.erase(ptag);
  return MemStatus::Ok;
}

MemStatus MemoryRegistry::registerMem(VirtAddr va, std::uint64_t len,
                                      const MemAttrs& attrs, MemHandle& out) {
  out = 0;
  if (len == 0) return MemStatus::ZeroLength;
  if (!ptagValid(attrs.ptag)) return MemStatus::InvalidPtag;
  const MemHandle handle = nextHandle_++;
  regions_.emplace(handle, MemRegion{va, len, attrs});
  ++ptagRefs_[attrs.ptag];
  registeredBytes_ += len;
  ++totalRegistrations_;
  out = handle;
  return MemStatus::Ok;
}

MemStatus MemoryRegistry::deregisterMem(MemHandle handle) {
  auto it = regions_.find(handle);
  if (it == regions_.end()) return MemStatus::InvalidHandle;
  registeredBytes_ -= it->second.length;
  --ptagRefs_[it->second.attrs.ptag];
  regions_.erase(it);
  return MemStatus::Ok;
}

const MemRegion* MemoryRegistry::find(MemHandle handle) const {
  auto it = regions_.find(handle);
  return it == regions_.end() ? nullptr : &it->second;
}

MemStatus MemoryRegistry::validate(MemHandle handle, VirtAddr va,
                                   std::uint64_t len, PtagId viPtag,
                                   Access access) const {
  const MemRegion* region = find(handle);
  if (region == nullptr) return MemStatus::InvalidHandle;
  if (region->attrs.ptag != viPtag) return MemStatus::ProtectionMismatch;
  if (va < region->start || va + len > region->start + region->length) {
    return MemStatus::OutOfRange;
  }
  if (access == Access::RdmaWriteTarget && !region->attrs.enableRdmaWrite) {
    return MemStatus::AccessDenied;
  }
  if (access == Access::RdmaReadSource && !region->attrs.enableRdmaRead) {
    return MemStatus::AccessDenied;
  }
  return MemStatus::Ok;
}

}  // namespace vibe::mem
