// NIC translation-lookaside cache.
//
// The Berkeley-VIA-style model keeps address translation tables in host
// memory while the NIC performs the translation; the NIC caches recent
// page translations in a small software cache. Buffer reuse therefore
// controls the hit rate — the mechanism behind the paper's Fig. 5: at 100%
// reuse every page after the first access hits, at 0% reuse every page of
// every message walks the host page table across the PCI bus.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace vibe::mem {

class Tlb {
 public:
  /// `capacity` = number of page translations held; 0 disables caching
  /// (every lookup misses).
  explicit Tlb(std::size_t capacity) : capacity_(capacity) {}

  /// Looks up the translation for page key `page`; on hit, refreshes LRU
  /// position. On miss the caller pays the walk and should insert().
  bool lookup(std::uint64_t page);

  /// Installs a translation, evicting the least recently used if full.
  void insert(std::uint64_t page);

  /// Removes translations for pages in [firstPage, lastPage] (deregister).
  /// Cost: O(1) when the range cannot intersect anything ever cached,
  /// O(range) by direct probe when the range is narrower than the current
  /// population, O(size) LRU scan otherwise — never quadratic across a
  /// deregistration sweep.
  void invalidateRange(std::uint64_t firstPage, std::uint64_t lastPage);

  void flush();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::size_t capacity_;
  // LRU list front = most recent. Map points into the list.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // Hull of every page ever inserted (reset by flush); lets
  // invalidateRange reject non-intersecting ranges in O(1). May be wider
  // than the current population after evictions — that only costs a
  // missed fast path, never correctness.
  std::uint64_t pagesSeenMin_ = ~std::uint64_t{0};
  std::uint64_t pagesSeenMax_ = 0;
};

}  // namespace vibe::mem
