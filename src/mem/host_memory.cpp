#include "mem/host_memory.hpp"

#include <algorithm>
#include <cstring>

namespace vibe::mem {

VirtAddr HostMemory::alloc(std::uint64_t len, std::uint64_t align) {
  if (align == 0) align = 1;
  next_ = (next_ + align - 1) & ~(align - 1);
  const VirtAddr va = next_;
  next_ += std::max<std::uint64_t>(len, 1);
  return va;
}

HostMemory::Page& HostMemory::touch(std::uint64_t pageIdx) {
  auto& slot = pages_[pageIdx];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(std::byte{0});
  }
  return *slot;
}

void HostMemory::write(VirtAddr va, std::span<const std::byte> data) {
  std::uint64_t off = 0;
  while (off < data.size()) {
    const VirtAddr cur = va + off;
    const std::uint64_t inPage = cur & (kPageSize - 1);
    const std::uint64_t chunk =
        std::min<std::uint64_t>(kPageSize - inPage, data.size() - off);
    Page& page = touch(pageOf(cur));
    std::memcpy(page.data() + inPage, data.data() + off, chunk);
    off += chunk;
  }
}

void HostMemory::read(VirtAddr va, std::span<std::byte> out) const {
  std::uint64_t off = 0;
  while (off < out.size()) {
    const VirtAddr cur = va + off;
    const std::uint64_t inPage = cur & (kPageSize - 1);
    const std::uint64_t chunk =
        std::min<std::uint64_t>(kPageSize - inPage, out.size() - off);
    auto it = pages_.find(pageOf(cur));
    if (it == pages_.end()) {
      std::memset(out.data() + off, 0, chunk);
    } else {
      std::memcpy(out.data() + off, it->second->data() + inPage, chunk);
    }
    off += chunk;
  }
}

void HostMemory::fill(VirtAddr va, std::byte value, std::uint64_t len) {
  std::uint64_t off = 0;
  while (off < len) {
    const VirtAddr cur = va + off;
    const std::uint64_t inPage = cur & (kPageSize - 1);
    const std::uint64_t chunk = std::min(kPageSize - inPage, len - off);
    Page& page = touch(pageOf(cur));
    std::memset(page.data() + inPage, static_cast<int>(value), chunk);
    off += chunk;
  }
}

}  // namespace vibe::mem
