// VIA memory registration semantics.
//
// The VIA spec requires every buffer referenced by a descriptor to lie in a
// registered memory region owned by the same protection tag as the VI. The
// registry tracks regions, protection tags, and RDMA access rights, and
// validates descriptor segments exactly the way a provider must before
// letting the NIC touch user memory.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "mem/host_memory.hpp"

namespace vibe::mem {

/// Opaque handle returned by memory registration; 0 is invalid.
using MemHandle = std::uint32_t;

/// Protection tag; 0 is invalid.
using PtagId = std::uint32_t;

/// Why a registration/validation attempt failed.
enum class MemStatus : std::uint8_t {
  Ok,
  InvalidHandle,      // unknown or deregistered handle
  InvalidPtag,        // unknown protection tag
  ProtectionMismatch, // handle owned by a different ptag
  OutOfRange,         // [va, va+len) escapes the registered region
  AccessDenied,       // RDMA access right not granted at registration
  PtagInUse,          // destroyPtag while regions still reference it
  ZeroLength,         // registration of an empty region
};

const char* toString(MemStatus s);

/// Requested access rights for a registration.
struct MemAttrs {
  PtagId ptag = 0;
  bool enableRdmaWrite = false;
  bool enableRdmaRead = false;
};

struct MemRegion {
  VirtAddr start = 0;
  std::uint64_t length = 0;
  MemAttrs attrs;
};

/// Kind of access a descriptor segment needs.
enum class Access : std::uint8_t { Local, RdmaWriteTarget, RdmaReadSource };

class MemoryRegistry {
 public:
  MemoryRegistry() = default;
  MemoryRegistry(const MemoryRegistry&) = delete;
  MemoryRegistry& operator=(const MemoryRegistry&) = delete;

  // --- protection tags ---
  PtagId createPtag();
  MemStatus destroyPtag(PtagId ptag);
  bool ptagValid(PtagId ptag) const { return ptags_.count(ptag) != 0; }

  // --- registration ---
  /// Registers [va, va+len). Returns Ok and sets `out`, or an error.
  MemStatus registerMem(VirtAddr va, std::uint64_t len, const MemAttrs& attrs,
                        MemHandle& out);
  MemStatus deregisterMem(MemHandle handle);

  /// Looks up an active region; nullptr if the handle is dead.
  const MemRegion* find(MemHandle handle) const;

  /// Full provider-side check: handle live, ptag matches, range inside the
  /// region, and (for RDMA targets/sources) the right was granted.
  MemStatus validate(MemHandle handle, VirtAddr va, std::uint64_t len,
                     PtagId viPtag, Access access = Access::Local) const;

  // --- introspection ---
  std::size_t activeRegions() const { return regions_.size(); }
  std::uint64_t registeredBytes() const { return registeredBytes_; }
  std::uint64_t totalRegistrations() const { return totalRegistrations_; }

 private:
  std::unordered_map<MemHandle, MemRegion> regions_;
  std::unordered_set<PtagId> ptags_;
  std::unordered_map<PtagId, std::size_t> ptagRefs_;
  MemHandle nextHandle_ = 1;
  PtagId nextPtag_ = 1;
  std::uint64_t registeredBytes_ = 0;
  std::uint64_t totalRegistrations_ = 0;
};

}  // namespace vibe::mem
