// Simulated per-node user address space.
//
// Benchmark programs need buffers with stable virtual addresses that the
// NIC models can "DMA" from and to. HostMemory is a sparse paged arena:
// addresses are allocated bump-style, and backing pages materialize only
// when bytes are actually touched — a 32 MB registration sweep costs no
// real memory, while data-transfer tests move real bytes end to end.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

namespace vibe::mem {

/// A simulated user-space virtual address.
using VirtAddr = std::uint64_t;

inline constexpr std::uint32_t kPageShift = 12;  // 4 KiB pages (x86, Linux 2.2)
inline constexpr std::uint64_t kPageSize = 1ULL << kPageShift;

/// Page index containing `va`.
constexpr std::uint64_t pageOf(VirtAddr va) { return va >> kPageShift; }

/// Number of pages spanned by [va, va+len). Zero-length spans zero pages.
constexpr std::uint32_t pagesSpanned(VirtAddr va, std::uint64_t len) {
  if (len == 0) return 0;
  return static_cast<std::uint32_t>(pageOf(va + len - 1) - pageOf(va) + 1);
}

class HostMemory {
 public:
  HostMemory() = default;
  HostMemory(const HostMemory&) = delete;
  HostMemory& operator=(const HostMemory&) = delete;

  /// Allocates `len` bytes aligned to `align` (power of two). Addresses
  /// start away from zero so 0 can mean "null".
  VirtAddr alloc(std::uint64_t len, std::uint64_t align = 64);

  /// Copies bytes into the simulated address space.
  void write(VirtAddr va, std::span<const std::byte> data);

  /// Copies bytes out of the simulated address space; untouched bytes
  /// read as zero.
  void read(VirtAddr va, std::span<std::byte> out) const;

  /// Fills a range with one byte value.
  void fill(VirtAddr va, std::byte value, std::uint64_t len);

  /// Bytes handed out by alloc() so far.
  std::uint64_t allocated() const { return next_ - kBase; }
  /// Number of materialized backing pages (diagnostics).
  std::size_t residentPages() const { return pages_.size(); }

 private:
  static constexpr VirtAddr kBase = 0x10000;
  using Page = std::array<std::byte, kPageSize>;

  Page& touch(std::uint64_t pageIdx);

  VirtAddr next_ = kBase;
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace vibe::mem
