// Shared seed pinning for randomized tests (fuzz streams, descriptor
// churn, coverage sweeps). Every randomized test derives its PRNG seed
// as testRunSeed() + <local constant>, so:
//   - default runs are bit-for-bit reproducible (base is pinned to 0 and
//     the local constants are committed in the test source), and
//   - a soak job can shift the whole family with VIBE_TEST_SEED=<base>
//     without touching any test, and a failure in either mode is
//     reproducible from the printed base plus the test's own name alone.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace vibe::testing {

/// Base seed for this test run: VIBE_TEST_SEED when set to a valid
/// integer, else 0 (the pinned default). Announced on stdout exactly
/// once per process so every failure report carries the recipe to
/// replay it.
inline std::uint64_t testRunSeed() {
  static const std::uint64_t base = [] {
    std::uint64_t s = 0;
    if (const char* env = std::getenv("VIBE_TEST_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') s = v;
    }
    std::printf("[   SEED   ] test seed base = %llu "
                "(reproduce with VIBE_TEST_SEED=%llu)\n",
                static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(s));
    return s;
  }();
  return base;
}

}  // namespace vibe::testing
