// Tests for the distributed-shared-memory layer: home distribution,
// read/write visibility under release consistency, caching behaviour,
// page-spanning accesses, and a small parallel computation.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/dsm/dsm.hpp"
#include "vibe/cluster.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using upper::dsm::DsmConfig;
using upper::dsm::DsmRegion;
using upper::msg::Communicator;

std::vector<std::byte> pattern(std::size_t len, std::uint8_t seed) {
  std::vector<std::byte> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = std::byte(static_cast<std::uint8_t>(seed + i * 3));
  }
  return out;
}

void runSpmd(const std::string& profile, std::uint32_t nodes,
             std::uint64_t bytes, const DsmConfig& dc,
             const std::function<void(DsmRegion&, Communicator&)>& body) {
  ClusterConfig cc;
  cc.profile = nic::profileByName(profile);
  cc.nodes = nodes;
  Cluster cluster(cc);
  std::vector<std::function<void(NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < nodes; ++r) {
    programs.push_back([&, r](NodeEnv& env) {
      auto comm = Communicator::create(env, r, nodes, {});
      auto region = DsmRegion::create(*comm, bytes, dc);
      body(*region, *comm);
    });
  }
  cluster.run(std::move(programs));
}

TEST(DsmTest, HomeDistributionIsRoundRobin) {
  runSpmd("clan", 3, 10 * 1024, {}, [](DsmRegion& dsm, Communicator& comm) {
    EXPECT_EQ(dsm.pageCount(), 10u);
    for (std::uint32_t p = 0; p < dsm.pageCount(); ++p) {
      EXPECT_EQ(dsm.homeOf(p), p % comm.size());
    }
    dsm.barrier();
  });
}

TEST(DsmTest, WritesBecomeVisibleAfterBarrier) {
  runSpmd("clan", 2, 8 * 1024, {}, [](DsmRegion& dsm, Communicator& comm) {
    if (comm.rank() == 0) {
      dsm.write(100, pattern(500, 7));  // page 0: homed at rank 0
      dsm.write(1024 + 50, pattern(200, 9));  // page 1: homed at rank 1
    }
    dsm.barrier();
    EXPECT_EQ(dsm.read(100, 500), pattern(500, 7));
    EXPECT_EQ(dsm.read(1024 + 50, 200), pattern(200, 9));
    dsm.barrier();
  });
}

TEST(DsmTest, StaleCacheIsInvalidatedByAcquire) {
  runSpmd("clan", 2, 4 * 1024, {}, [](DsmRegion& dsm, Communicator& comm) {
    // Page 1 is homed at rank 1; rank 0 caches it, rank 1 updates it.
    if (comm.rank() == 0) {
      EXPECT_EQ(dsm.read(1024, 16),
                std::vector<std::byte>(16, std::byte{0}));  // zeros
    }
    dsm.barrier();
    if (comm.rank() == 1) dsm.write(1024, pattern(16, 5));
    dsm.barrier();  // includes acquire: rank 0's cached copy invalidated
    EXPECT_EQ(dsm.read(1024, 16), pattern(16, 5));
    dsm.barrier();
  });
}

TEST(DsmTest, CacheHitsAccumulateBetweenSynchronizations) {
  runSpmd("clan", 2, 4 * 1024, {}, [](DsmRegion& dsm, Communicator& comm) {
    if (comm.rank() == 0) {
      (void)dsm.read(1024, 64);  // miss: fetch page 1 from rank 1
      (void)dsm.read(1100, 64);  // hit
      (void)dsm.read(1200, 64);  // hit
      EXPECT_EQ(dsm.remoteReads(), 1u);
      EXPECT_GE(dsm.cacheHits(), 2u);
    }
    dsm.barrier();
  });
}

TEST(DsmTest, PageSpanningAccessRoundTrips) {
  DsmConfig dc;
  dc.pageBytes = 256;
  runSpmd("mvia", 3, 4 * 1024, dc, [](DsmRegion& dsm, Communicator& comm) {
    // A write crossing several pages with different homes.
    if (comm.rank() == 2) {
      dsm.write(200, pattern(900, 0x2A));  // spans pages 0..4
    }
    dsm.barrier();
    EXPECT_EQ(dsm.read(200, 900), pattern(900, 0x2A));
    dsm.barrier();
  });
}

TEST(DsmTest, BoundsAreEnforced) {
  runSpmd("clan", 2, 2048, {}, [](DsmRegion& dsm, Communicator&) {
    EXPECT_THROW((void)dsm.read(2048, 1), std::out_of_range);
    EXPECT_THROW(dsm.write(2040, pattern(16, 1)), std::out_of_range);
    dsm.barrier();
  });
}

TEST(DsmTest, ParallelSumOverSharedArray) {
  // Classic DSM program: rank 0 initializes a shared array, everyone sums
  // a disjoint slice, partial sums land in per-rank slots, rank 0 reduces.
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint32_t kDoubles = 1024;
  const std::uint64_t arrayBytes = kDoubles * sizeof(double);
  const std::uint64_t slotBase = arrayBytes;  // one double per rank after it
  runSpmd("clan", kRanks, arrayBytes + kRanks * sizeof(double), {},
          [&](DsmRegion& dsm, Communicator& comm) {
            if (comm.rank() == 0) {
              for (std::uint32_t i = 0; i < kDoubles; ++i) {
                dsm.writeDouble(i * sizeof(double), i + 1.0);
              }
            }
            dsm.barrier();
            const std::uint32_t per = kDoubles / kRanks;
            double partial = 0;
            for (std::uint32_t i = comm.rank() * per;
                 i < (comm.rank() + 1) * per; ++i) {
              partial += dsm.readDouble(i * sizeof(double));
            }
            dsm.writeDouble(slotBase + comm.rank() * sizeof(double), partial);
            dsm.barrier();
            if (comm.rank() == 0) {
              double total = 0;
              for (std::uint32_t r = 0; r < kRanks; ++r) {
                total += dsm.readDouble(slotBase + r * sizeof(double));
              }
              EXPECT_DOUBLE_EQ(total, kDoubles * (kDoubles + 1.0) / 2.0);
            }
            dsm.barrier();
          });
}

TEST(DsmTest, WriteThroughCountsOnlyRemotePages) {
  runSpmd("clan", 2, 4 * 1024, {}, [](DsmRegion& dsm, Communicator& comm) {
    if (comm.rank() == 0) {
      dsm.write(0, pattern(100, 1));     // page 0: local home, no traffic
      dsm.write(1024, pattern(100, 2));  // page 1: remote home
      EXPECT_EQ(dsm.writeThroughs(), 1u);
    }
    dsm.barrier();
  });
}

TEST(DsmTest, PingPongThroughSharedFlagTerminates) {
  // Two ranks alternate writing a shared flag: exercises repeated
  // invalidate/refetch cycles without deadlock.
  runSpmd("bvia", 2, 1024, {}, [](DsmRegion& dsm, Communicator& comm) {
    for (int round = 0; round < 6; ++round) {
      if (static_cast<int>(comm.rank()) == round % 2) {
        dsm.writeDouble(0, round + 1.0);
      }
      dsm.barrier();
      EXPECT_DOUBLE_EQ(dsm.readDouble(0), round + 1.0) << "round " << round;
      dsm.barrier();
    }
  });
}

TEST(DsmTest, TwoRegionsCoexistWithDistinctTagOffsets) {
  runSpmd("clan", 2, 2048, {}, [](DsmRegion& a, Communicator& comm) {
    DsmConfig second;
    second.serviceTagOffset = 8;
    auto b = DsmRegion::create(comm, 4096, second);
    if (comm.rank() == 0) {
      a.writeDouble(0, 1.5);
      b->writeDouble(1024, 2.5);  // page 1 of region b: homed at rank 1
    }
    a.barrier();
    EXPECT_DOUBLE_EQ(a.readDouble(0), 1.5);
    EXPECT_DOUBLE_EQ(b->readDouble(1024), 2.5);
    a.barrier();
  });
}

TEST(DsmTest, DuplicateServiceTagsAreRejectedLoudly) {
  runSpmd("clan", 2, 2048, {}, [](DsmRegion&, Communicator& comm) {
    // A second region with the same (default) tag offset must throw
    // instead of silently stealing the first one's protocol traffic.
    EXPECT_THROW((void)DsmRegion::create(comm, 2048, {}), std::logic_error);
    comm.barrier();
  });
}

}  // namespace
}  // namespace vibe
