// Tests for the one-sided get/put window layer: RDMA and emulated paths,
// fence semantics, bounds checking, and multi-rank halo exchange.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/getput/window.hpp"
#include "vibe/cluster.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using upper::getput::Window;
using upper::getput::WindowConfig;
using upper::msg::Communicator;

std::vector<std::byte> pattern(std::size_t len, std::uint8_t seed) {
  std::vector<std::byte> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = std::byte(static_cast<std::uint8_t>(seed ^ (i * 7)));
  }
  return out;
}

void runSpmd(const std::string& profile, std::uint32_t nodes,
             const std::function<void(Window&, Communicator&, NodeEnv&)>& body,
             const WindowConfig& wc = {}) {
  ClusterConfig cc;
  cc.profile = nic::profileByName(profile);
  cc.nodes = nodes;
  Cluster cluster(cc);
  std::vector<std::function<void(NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < nodes; ++r) {
    programs.push_back([&, r](NodeEnv& env) {
      auto comm = Communicator::create(env, r, nodes, {});
      auto window = Window::create(*comm, wc);
      body(*window, *comm, env);
    });
  }
  cluster.run(std::move(programs));
}

class GetPutAllProfiles : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Profiles, GetPutAllProfiles,
                         ::testing::Values("mvia", "bvia", "clan"),
                         [](const auto& pi) { return pi.param; });

TEST_P(GetPutAllProfiles, PutThenGetRoundTrips) {
  // clan/mvia use RDMA write for put; bvia uses the emulated path.
  runSpmd(GetParam(), 2, [&](Window& win, Communicator& comm, NodeEnv&) {
    if (comm.rank() == 0) {
      win.put(1, 128, pattern(4000, 0x21));
      win.fence();
      const auto back = win.get(1, 128, 4000);
      EXPECT_EQ(back, pattern(4000, 0x21));
      win.fence();
    } else {
      win.fence();  // serves the put if emulated; orders the data if RDMA
      EXPECT_EQ(win.readLocal(128, 4000), pattern(4000, 0x21));
      win.fence();  // serves rank 0's get request
    }
  });
}

TEST(GetPutTest, RdmaPathIsUsedWhereSupported) {
  runSpmd("clan", 2, [&](Window& win, Communicator& comm, NodeEnv&) {
    if (comm.rank() == 0) {
      win.put(1, 0, pattern(1000, 1));
      EXPECT_EQ(win.rdmaPuts(), 1u);
      EXPECT_EQ(win.emulatedPuts(), 0u);
      // cLAN has no RDMA read, so get falls back to request/reply.
      win.fence();
      (void)win.get(1, 0, 16);
      EXPECT_EQ(win.emulatedGets(), 1u);
      win.fence();
    } else {
      win.fence();
      win.fence();
    }
  });
}

TEST(GetPutTest, IbaUsesRdmaForBothDirections) {
  runSpmd("iba", 2, [&](Window& win, Communicator& comm, NodeEnv&) {
    if (comm.rank() == 0) {
      win.put(1, 0, pattern(2000, 6));
      win.fence();
      EXPECT_EQ(win.get(1, 0, 2000), pattern(2000, 6));
      EXPECT_EQ(win.rdmaPuts(), 1u);
      EXPECT_EQ(win.rdmaGets(), 1u);
      EXPECT_EQ(win.emulatedPuts(), 0u);
      EXPECT_EQ(win.emulatedGets(), 0u);
      win.fence();
    } else {
      win.fence();
      win.fence();
    }
  });
}

TEST(GetPutTest, EmulatedPathIsUsedWithoutRdma) {
  runSpmd("bvia", 2, [&](Window& win, Communicator& comm, NodeEnv&) {
    if (comm.rank() == 0) {
      win.put(1, 64, pattern(100, 2));
      EXPECT_EQ(win.rdmaPuts(), 0u);
      EXPECT_EQ(win.emulatedPuts(), 1u);
      win.fence();
    } else {
      win.fence();
      EXPECT_EQ(win.readLocal(64, 100), pattern(100, 2));
    }
  });
}

TEST(GetPutTest, LargePutChunksThroughStaging) {
  // > 64 KiB staging: the RDMA path must chunk and still be intact.
  WindowConfig wc;
  wc.windowBytes = 1 << 20;
  runSpmd(
      "clan", 2,
      [&](Window& win, Communicator& comm, NodeEnv&) {
        constexpr std::size_t kBytes = 300 * 1024;
        if (comm.rank() == 0) {
          win.put(1, 4096, pattern(kBytes, 0x4C));
          win.fence();
        } else {
          win.fence();
          EXPECT_EQ(win.readLocal(4096, kBytes), pattern(kBytes, 0x4C));
        }
      },
      wc);
}

TEST(GetPutTest, BoundsAreEnforced) {
  runSpmd("clan", 2, [&](Window& win, Communicator& comm, NodeEnv&) {
    if (comm.rank() == 0) {
      EXPECT_THROW(win.put(1, win.size() - 10, pattern(100, 1)),
                   std::out_of_range);
      EXPECT_THROW((void)win.get(1, win.size(), 1), std::out_of_range);
      EXPECT_THROW(win.writeLocal(win.size(), pattern(1, 1)),
                   std::out_of_range);
    }
    win.fence();
  });
}

TEST(GetPutTest, HaloExchangeAcrossFourRanks) {
  // 1-D ring halo exchange: every rank puts its boundary cells into both
  // neighbours' halo slots, then everyone verifies after a fence.
  constexpr std::uint32_t kRanks = 4;
  constexpr std::size_t kCell = 256;
  runSpmd("clan", kRanks, [&](Window& win, Communicator& comm, NodeEnv&) {
    const std::uint32_t me = comm.rank();
    const std::uint32_t left = (me + kRanks - 1) % kRanks;
    const std::uint32_t right = (me + 1) % kRanks;
    // Window layout: [0] left halo, [1] my cells, [2] right halo.
    win.writeLocal(kCell, pattern(kCell, static_cast<std::uint8_t>(me)));
    // My leftmost boundary goes into my left neighbour's right halo.
    win.put(left, 2 * kCell, pattern(kCell, static_cast<std::uint8_t>(me)));
    win.put(right, 0, pattern(kCell, static_cast<std::uint8_t>(me)));
    win.fence();
    EXPECT_EQ(win.readLocal(0, kCell),
              pattern(kCell, static_cast<std::uint8_t>(left)));
    EXPECT_EQ(win.readLocal(2 * kCell, kCell),
              pattern(kCell, static_cast<std::uint8_t>(right)));
  });
}

TEST(GetPutTest, GetObservesLatestFencedData) {
  runSpmd("mvia", 2, [&](Window& win, Communicator& comm, NodeEnv&) {
    if (comm.rank() == 1) {
      win.writeLocal(0, pattern(512, 10));
      win.fence();
      win.fence();
      win.writeLocal(0, pattern(512, 20));
      win.fence();
      win.fence();
    } else {
      win.fence();
      EXPECT_EQ(win.get(1, 0, 512), pattern(512, 10));
      win.fence();
      win.fence();
      EXPECT_EQ(win.get(1, 0, 512), pattern(512, 20));
      win.fence();
    }
  });
}

}  // namespace
}  // namespace vibe
