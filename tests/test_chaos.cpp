// Seed-sweep chaos harness: runs workloads under generated FaultPlans,
// asserts the reliability invariants on every run (via fault::
// InvariantChecker consuming the trace stream), and verifies determinism
// by running each seed twice and comparing trace digests byte-for-byte.
//
// Also covers the explicit fault scenarios the sweep keeps recoverable:
// a partition outlasting the retry budget (must tear down cleanly, never
// hang), payload corruption (detected, counted, retransmitted around),
// and the empty-plan identity (an armed injector with nothing to do is
// byte-identical to no injector at all).
//
// Seed count: VIBE_CHAOS_SEEDS env var (default 32).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariants.hpp"
#include "harness/sweep.hpp"
#include "nic/profiles.hpp"
#include "test_env.hpp"
#include "upper/msg/communicator.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

namespace vibe {
namespace {

using fault::FaultAction;
using fault::FaultInjector;
using vibe::testing::ScopedEnv;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultPlanParams;
using fault::InvariantChecker;
using fault::LinkSide;
using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using upper::msg::CommConfig;
using upper::msg::Communicator;
using vipl::PendingConn;
using vipl::Provider;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;

constexpr sim::Duration kTimeout = sim::kSecond * 10;
constexpr std::uint64_t kDisc = 5;

int seedCount() {
  if (const char* env = std::getenv("VIBE_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 32;
}

struct Buf {
  mem::VirtAddr va = 0;
  mem::MemHandle handle = 0;
};

Buf makeBuf(Provider& nic, mem::PtagId ptag, std::uint64_t len) {
  Buf b;
  b.va = nic.memory().alloc(len, mem::kPageSize);
  vipl::VipMemAttributes ma;
  ma.ptag = ptag;
  EXPECT_EQ(vipl::VipRegisterMem(nic, b.va, len, ma, b.handle),
            VipResult::VIP_SUCCESS);
  return b;
}

void fillSeeded(Provider& nic, mem::VirtAddr va, std::size_t len,
                std::uint8_t seed) {
  std::vector<std::byte> data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = std::byte(static_cast<std::uint8_t>(seed ^ (i * 31)));
  }
  nic.memory().write(va, data);
}

bool checkSeeded(Provider& nic, mem::VirtAddr va, std::size_t len,
                 std::uint8_t seed) {
  std::vector<std::byte> data(len);
  nic.memory().read(va, data);
  for (std::size_t i = 0; i < len; ++i) {
    if (data[i] != std::byte(static_cast<std::uint8_t>(seed ^ (i * 31)))) {
      return false;
    }
  }
  return true;
}

Vi* makeVi(Provider& nic, mem::PtagId ptag, nic::Reliability rel) {
  vipl::VipViAttributes va;
  va.ptag = ptag;
  va.reliabilityLevel = rel;
  Vi* vi = nullptr;
  EXPECT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
            VipResult::VIP_SUCCESS);
  return vi;
}

// ---------------------------------------------------------------------------
// Workloads. Every reliable receiver preposts ALL descriptors before the
// connection is accepted: on reliable VIA a missing descriptor is a fatal
// protocol error by design, not a fault-tolerance gap.
// ---------------------------------------------------------------------------

/// node0 <-> node1 request/response rounds, ReliableDelivery.
void pingPong(Cluster& cluster, std::uint64_t seed) {
  constexpr int kRounds = 150;
  constexpr std::size_t kBytes = 1024;
  int rounds = 0;

  auto node0 = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf tx = makeBuf(nic, ptag, kBytes);
    Buf rx = makeBuf(nic, ptag, kRounds * kBytes);
    fillSeeded(nic, tx.va, kBytes, static_cast<std::uint8_t>(seed));
    Vi* vi = makeVi(nic, ptag, nic::Reliability::ReliableDelivery);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kRounds; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(rx.va + i * kBytes, rx.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    for (int i = 0; i < kRounds; ++i) {
      VipDescriptor d = VipDescriptor::send(tx.va, tx.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, recvs[i].get()) << "pong out of order at round " << i;
      ++rounds;
    }
  };

  auto node1 = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf tx = makeBuf(nic, ptag, kBytes);
    Buf rx = makeBuf(nic, ptag, kRounds * kBytes);
    fillSeeded(nic, tx.va, kBytes, static_cast<std::uint8_t>(seed + 1));
    Vi* vi = makeVi(nic, ptag, nic::Reliability::ReliableDelivery);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kRounds; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(rx.va + i * kBytes, rx.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    for (int i = 0; i < kRounds; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, recvs[i].get()) << "ping out of order at round " << i;
      VipDescriptor d = VipDescriptor::send(tx.va, tx.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    }
  };

  cluster.run({node0, node1});
  EXPECT_EQ(rounds, kRounds);
}

/// node0 streams multi-fragment messages at node1; the reliability level
/// rotates with the seed so both RD and RR see chaos.
void streaming(Cluster& cluster, std::uint64_t seed) {
  constexpr int kMessages = 120;
  constexpr std::size_t kBytes = 6000;
  const nic::Reliability rel = (seed >> 2) % 2 == 0
                                   ? nic::Reliability::ReliableDelivery
                                   : nic::Reliability::ReliableReception;
  int received = 0;

  auto sender = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    for (int i = 0; i < kMessages; ++i) {
      fillSeeded(nic, buf.va + i * kBytes, kBytes,
                 static_cast<std::uint8_t>(i));
    }
    Vi* vi = makeVi(nic, ptag, rel);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> sends;
    for (int i = 0; i < kMessages; ++i) {
      sends.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::send(buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostSend(nic, vi, sends[i].get()),
                VipResult::VIP_SUCCESS);
    }
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, sends[i].get()) << "send completions out of order";
    }
  };

  auto receiver = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    Vi* vi = makeVi(nic, ptag, rel);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kMessages; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, recvs[i].get()) << "recv completions out of order";
      EXPECT_TRUE(checkSeeded(nic, buf.va + i * kBytes, kBytes,
                              static_cast<std::uint8_t>(i)))
          << "payload corrupted for message " << i;
      ++received;
    }
  };

  cluster.run({sender, receiver});
  EXPECT_EQ(received, kMessages);
}

/// node0 client drives two VIs into a node1 server, alternating
/// request/response traffic across them (ReliableDelivery).
void clientServer(Cluster& cluster, std::uint64_t seed) {
  constexpr int kRequests = 100;  // total across both VIs
  constexpr std::size_t kBytes = 512;
  (void)seed;
  int responses = 0;

  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf tx = makeBuf(nic, ptag, kBytes);
    Buf rx = makeBuf(nic, ptag, kRequests * kBytes);
    fillSeeded(nic, tx.va, kBytes, 0x11);
    Vi* vis[2];
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int v = 0; v < 2; ++v) {
      vis[v] = makeVi(nic, ptag, nic::Reliability::ReliableDelivery);
      for (int i = 0; i < kRequests / 2; ++i) {
        const int slot = v * (kRequests / 2) + i;
        recvs.push_back(std::make_unique<VipDescriptor>(VipDescriptor::recv(
            rx.va + slot * kBytes, rx.handle, kBytes)));
        ASSERT_EQ(vipl::VipPostRecv(nic, vis[v], recvs.back().get()),
                  VipResult::VIP_SUCCESS);
      }
    }
    for (int v = 0; v < 2; ++v) {
      ASSERT_EQ(vipl::VipConnectRequest(nic, vis[v], {1, kDisc + v},
                                        kTimeout),
                VipResult::VIP_SUCCESS);
    }
    for (int i = 0; i < kRequests; ++i) {
      Vi* vi = vis[i % 2];
      VipDescriptor d = VipDescriptor::send(tx.va, tx.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ++responses;
    }
  };

  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf tx = makeBuf(nic, ptag, kBytes);
    Buf rx = makeBuf(nic, ptag, kRequests * kBytes);
    fillSeeded(nic, tx.va, kBytes, 0x22);
    Vi* vis[2];
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int v = 0; v < 2; ++v) {
      vis[v] = makeVi(nic, ptag, nic::Reliability::ReliableDelivery);
      for (int i = 0; i < kRequests / 2; ++i) {
        const int slot = v * (kRequests / 2) + i;
        recvs.push_back(std::make_unique<VipDescriptor>(VipDescriptor::recv(
            rx.va + slot * kBytes, rx.handle, kBytes)));
        ASSERT_EQ(vipl::VipPostRecv(nic, vis[v], recvs.back().get()),
                  VipResult::VIP_SUCCESS);
      }
    }
    for (int v = 0; v < 2; ++v) {
      PendingConn conn;
      ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc + v}, kTimeout, conn),
                VipResult::VIP_SUCCESS);
      // Requests race in on both discriminators; match by token order.
      Vi* vi = conn.discriminator == kDisc ? vis[0] : vis[1];
      ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi),
                VipResult::VIP_SUCCESS);
    }
    for (int i = 0; i < kRequests; ++i) {
      Vi* vi = vis[i % 2];
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      VipDescriptor d = VipDescriptor::send(tx.va, tx.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    }
  };

  cluster.run({client, server});
  EXPECT_EQ(responses, kRequests);
}

/// MPI-like layer over the chaos: eager and rendezvous round trips through
/// upper::msg::Communicator (ReliableDelivery underneath).
void msgLayer(Cluster& cluster, std::uint64_t seed) {
  constexpr int kRounds = 30;
  int echoed = 0;

  auto pattern = [seed](std::size_t len, std::uint8_t tagSeed) {
    std::vector<std::byte> out(len);
    for (std::size_t i = 0; i < len; ++i) {
      out[i] = std::byte(
          static_cast<std::uint8_t>(tagSeed + seed + i * 13));
    }
    return out;
  };

  std::vector<std::function<void(NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < 2; ++r) {
    programs.push_back([&, r](NodeEnv& env) {
      auto comm = Communicator::create(env, r, 2, CommConfig{});
      for (int i = 0; i < kRounds; ++i) {
        // Alternate eager (below the 8 KiB threshold) and rendezvous.
        const std::size_t len = i % 2 == 0 ? 300 : 12000;
        if (r == 0) {
          comm->send(1, i, pattern(len, static_cast<std::uint8_t>(i)));
          const auto back = comm->recv(1, 1000 + i);
          EXPECT_EQ(back, pattern(len, static_cast<std::uint8_t>(i + 1)));
          ++echoed;
        } else {
          const auto got = comm->recv(0, i);
          EXPECT_EQ(got, pattern(len, static_cast<std::uint8_t>(i)));
          comm->send(0, 1000 + i, pattern(len, static_cast<std::uint8_t>(i + 1)));
        }
      }
    });
  }
  cluster.run(std::move(programs));
  EXPECT_EQ(echoed, kRounds);
}

// ---------------------------------------------------------------------------
// The sweep driver
// ---------------------------------------------------------------------------

using WorkloadFn = void (*)(Cluster&, std::uint64_t);

struct RunResult {
  std::uint64_t digest = 0;
  sim::SimTime endTime = 0;
  std::uint64_t reliableDeliveries = 0;
  std::vector<std::string> violations;
  std::string planText;
};

/// One chaos run: cluster + tracer + invariant checker + injector with the
/// seed-generated plan, then the workload, then finalize. `simShards` 0
/// runs the classic serial engine; >= 1 hosts the stack on the sharded
/// PDES engine with the two nodes on separate leaf domains of a
/// two-level tree, so every frame and every fault window crosses a
/// domain boundary.
RunResult runOnce(std::uint64_t seed, WorkloadFn workload,
                  std::uint32_t simShards = 0) {
  static const char* kProfiles[] = {"mvia", "bvia", "clan"};
  ClusterConfig cfg;
  cfg.profile = nic::profileByName(kProfiles[seed % 3]);
  cfg.seed = seed;
  if (simShards > 0) {
    cfg.nodesPerSwitch = 1;  // leaf per node: 3 PDES domains
    cfg.simShards = simShards;
  }
  Cluster cluster(cfg);

  sim::Tracer tracer(512);  // digest and sink are ring-capacity independent
  InvariantChecker checker(cfg.profile.rtoRetryBudget);
  checker.attach(tracer);
  cluster.setTracer(&tracer);

  FaultPlanParams pp;
  pp.nodes = 2;
  pp.actions = 8;
  pp.horizon = sim::msec(8);
  pp.maxBurst = sim::msec(2);
  pp.allowPartitions = false;  // sweep stays recoverable; budget never trips
  FaultInjector injector(FaultPlan::generate(seed, pp));
  injector.arm(cluster);

  workload(cluster, seed);
  checker.finalize(cluster);

  RunResult r;
  r.digest = tracer.digest();
  r.endTime = cluster.now();
  r.reliableDeliveries = checker.reliableDeliveries();
  r.violations = checker.violations();
  r.planText = injector.plan().toString();
  return r;
}

struct SweepCase {
  const char* name;
  WorkloadFn fn;
};

class ChaosSweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    Workloads, ChaosSweep,
    ::testing::Values(SweepCase{"pingpong", pingPong},
                      SweepCase{"streaming", streaming},
                      SweepCase{"clientserver", clientServer},
                      SweepCase{"msg", msgLayer}),
    [](const auto& pi) { return std::string(pi.param.name); });

TEST_P(ChaosSweep, InvariantsHoldAndRunsAreDeterministic) {
  const SweepCase& wc = GetParam();
  const int seeds = seedCount();
  // Seeds are independent points: shard them across the sweep harness
  // (VIBE_JOBS workers) and assert on the collected results in seed order,
  // so failure output reads identically at any thread count.
  struct SeedResult {
    RunResult first;
    RunResult second;
  };
  const auto results = harness::runSweep(
      static_cast<std::size_t>(seeds), [&](harness::PointEnv& env) {
        const std::uint64_t seed = 1000 + env.index * 7919;
        SeedResult r;
        r.first = runOnce(seed, wc.fn);
        // Determinism: the same seed must replay byte-for-byte.
        r.second = runOnce(seed, wc.fn);
        return r;
      });
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(s) * 7919;
    SCOPED_TRACE("workload=" + std::string(wc.name) +
                 " seed=" + std::to_string(seed));
    const RunResult& first = results[static_cast<std::size_t>(s)].first;
    const RunResult& second = results[static_cast<std::size_t>(s)].second;
    EXPECT_TRUE(first.violations.empty())
        << "invariant violations:\n"
        << ::testing::PrintToString(first.violations) << "\nplan:\n"
        << first.planText;
    EXPECT_GT(first.reliableDeliveries, 0u);
    EXPECT_EQ(first.digest, second.digest)
        << "trace digest diverged on replay; plan:\n" << first.planText;
    EXPECT_EQ(first.endTime, second.endTime);
  }
}

TEST(ChaosShardsAxis, DigestSweepIgnoresSimShards) {
  // The chaos stack runs on the serial Engine; VIBE_SIM_SHARDS threads a
  // *sharded PDES* simulation and must not move a single chaos digest —
  // at any jobs count. This is the cheap half of the shards x jobs
  // matrix (test_determinism and test_pdes carry the PDES half); the
  // pdes-tsan CI job reruns this whole binary at VIBE_SIM_SHARDS=4.
  const int seeds = std::min(seedCount(), 8);
  auto foldedDigest = [&](const char* shards, unsigned jobs) {
    ScopedEnv env("VIBE_SIM_SHARDS", shards);
    harness::SweepOptions opts;
    opts.jobs = jobs;
    const auto digests = harness::runSweep(
        static_cast<std::size_t>(seeds),
        [&](harness::PointEnv& penv) {
          return runOnce(1000 + penv.index * 7919, pingPong).digest;
        },
        opts);
    std::uint64_t acc = sim::Tracer::kDigestSeed;
    for (std::uint64_t d : digests) acc = sim::Tracer::combineDigest(acc, d);
    return acc;
  };
  const std::uint64_t base = foldedDigest("1", 1);
  constexpr const char* kShards[] = {"2", "7", nullptr};
  for (const char* shards : kShards) {
    for (unsigned jobs : {1u, 4u}) {
      EXPECT_EQ(foldedDigest(shards, jobs), base)
          << "VIBE_SIM_SHARDS=" << (shards ? shards : "<unset>")
          << " jobs=" << jobs;
    }
  }
}

TEST(ChaosShardedCluster, SweepIsShardCountInvariantAndReplays) {
  // The other half of the axis: here the chaos stack itself runs on the
  // hosted ShardedEngine (runOnce simShards >= 1 puts each node on its
  // own leaf-switch domain). The per-domain schedules are a function of
  // the simulation alone, so digest, end time, delivery count, and the
  // invariant wall must not move with the worker shard count — and every
  // seed must still replay byte-for-byte.
  const int seeds = std::min(seedCount(), 6);
  const WorkloadFn workloads[] = {pingPong, streaming};
  const char* names[] = {"pingpong", "streaming"};
  for (std::size_t w = 0; w < std::size(workloads); ++w) {
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 4000 + static_cast<std::uint64_t>(s) * 7919;
      SCOPED_TRACE("workload=" + std::string(names[w]) +
                   " seed=" + std::to_string(seed));
      const RunResult base = runOnce(seed, workloads[w], /*simShards=*/1);
      EXPECT_TRUE(base.violations.empty())
          << "invariant violations:\n"
          << ::testing::PrintToString(base.violations) << "\nplan:\n"
          << base.planText;
      EXPECT_GT(base.reliableDeliveries, 0u);
      for (std::uint32_t shards : {2u, 7u}) {
        const RunResult got = runOnce(seed, workloads[w], shards);
        EXPECT_EQ(got.digest, base.digest)
            << "sharded chaos digest moved at shards=" << shards
            << "; plan:\n" << base.planText;
        EXPECT_EQ(got.endTime, base.endTime) << "shards=" << shards;
        EXPECT_EQ(got.reliableDeliveries, base.reliableDeliveries);
        EXPECT_TRUE(got.violations.empty())
            << ::testing::PrintToString(got.violations);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Explicit fault scenarios
// ---------------------------------------------------------------------------

TEST(ChaosFaults, PartitionOutlastingRetryBudgetTearsDownCleanly) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.seed = 7;
  Cluster cluster(cfg);

  sim::Tracer tracer;
  InvariantChecker checker(cfg.profile.rtoRetryBudget);
  checker.attach(tracer);
  cluster.setTracer(&tracer);

  // Node 1 falls off the fabric at t=1ms for 400ms — far beyond the
  // ~111ms the retry budget tolerates (rtoBase * (1+2+4+8 + 12 *
  // rtoBackoffCap) of backoff at clan's 1ms base, cap 8, budget 16).
  FaultPlan plan;
  plan.seed = 7;
  FaultAction part;
  part.kind = FaultKind::Partition;
  part.node = 1;
  part.side = LinkSide::Both;
  part.start = sim::msec(1);
  part.duration = sim::msec(400);
  part.rate = 1.0;
  plan.actions.push_back(part);
  FaultInjector injector(plan);
  injector.arm(cluster);

  constexpr std::size_t kBytes = 512;
  bool senderSawCallback = false;
  bool senderSawError = false;

  auto sender = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    nic.setErrorCallback([&](Vi*, nic::WorkStatus why) {
      senderSawCallback = true;
      EXPECT_EQ(why, nic::WorkStatus::ConnectionLost);
    });
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kBytes);
    Vi* vi = makeVi(nic, ptag, nic::Reliability::ReliableDelivery);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    // Keep sending into the partition until the reliability engine gives
    // up. Every wait uses a generous virtual timeout: the run must END
    // with a clean error, not hang on an RTO loop.
    while (env.now() < sim::msec(300)) {
      VipDescriptor d = VipDescriptor::send(buf.va, buf.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      const VipResult r = nic.sendWait(vi, sim::kSecond, done);
      if (r == VipResult::VIP_DESCRIPTOR_ERROR) {
        senderSawError = true;
        EXPECT_EQ(d.cs.status.error, nic::WorkStatus::ConnectionLost);
        break;
      }
      ASSERT_EQ(r, VipResult::VIP_SUCCESS);
    }
    EXPECT_EQ(vi->state(), vipl::ViState::Error);
  };

  auto receiver = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    constexpr int kSlots = 4096;
    Buf buf = makeBuf(nic, ptag, kSlots * kBytes);
    Vi* vi = makeVi(nic, ptag, nic::Reliability::ReliableDelivery);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kSlots; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    // Drain until the partition starves the stream; the receiver's side
    // never breaks (it has nothing unacked), it simply times out.
    for (;;) {
      VipDescriptor* done = nullptr;
      const VipResult r = nic.recvWait(vi, sim::msec(150), done);
      if (r != VipResult::VIP_SUCCESS) break;
    }
  };

  cluster.run({sender, receiver});
  checker.finalize(cluster);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_TRUE(senderSawError) << "sendWait never surfaced the teardown";
  EXPECT_TRUE(senderSawCallback) << "error callback never fired";
  EXPECT_GT(cluster.node(0).device().stats().protocolErrors, 0u);
}

TEST(ChaosFaults, CorruptionIsDetectedCountedAndRecovered) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.seed = 11;
  Cluster cluster(cfg);

  sim::Tracer tracer;
  InvariantChecker checker(cfg.profile.rtoRetryBudget);
  checker.attach(tracer);
  cluster.setTracer(&tracer);

  FaultPlan plan;
  plan.seed = 11;
  FaultAction corrupt;
  corrupt.kind = FaultKind::Corruption;
  corrupt.node = 0;
  corrupt.side = LinkSide::Uplink;
  corrupt.start = 0;
  corrupt.duration = sim::kSecond;  // the whole run: every frame at risk
  corrupt.rate = 0.4;
  plan.actions.push_back(corrupt);
  FaultInjector injector(plan);
  injector.arm(cluster);

  streaming(cluster, /*seed=*/0);  // asserts full in-order delivery itself
  checker.finalize(cluster);
  EXPECT_TRUE(checker.ok()) << checker.report();

  // The corrupted frames were counted by the wire and by the receiving
  // NIC, and the reliability engine retransmitted around them.
  EXPECT_GT(cluster.network().uplink(0).framesCorrupted(), 0u);
  EXPECT_GT(cluster.network().framesCorrupted(), 0u);
  EXPECT_GT(cluster.node(1).device().stats().rxCorrupted, 0u);
  EXPECT_GT(cluster.node(0).device().stats().retransmits, 0u);
}

TEST(ChaosFaults, TrunkFlapHitsCrossLeafTrafficAndRecovers) {
  // Regression for the trunk-injection gap: with nodesPerSwitch=1 every
  // node0 <-> node1 frame crosses both trunks, so a flap armed on the
  // shared leaf0 -> root trunk must drop frames there — something that
  // was impossible when FaultInjector could only reach uplink/downlink.
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.seed = 21;
  cfg.nodesPerSwitch = 1;  // two leaves, all traffic via the root
  Cluster cluster(cfg);

  sim::Tracer tracer;
  InvariantChecker checker(cfg.profile.rtoRetryBudget);
  checker.attach(tracer);
  cluster.setTracer(&tracer);

  FaultPlan plan;
  plan.seed = 21;
  FaultAction flap;
  flap.kind = FaultKind::LinkFlap;
  flap.target = fault::FaultTarget::Trunk;
  flap.node = 0;  // leaf index, not host id
  flap.side = LinkSide::Uplink;
  // cLAN connection install alone costs ~2.4 ms; open the window mid-run
  // where data frames are actually crossing the trunk. A 2 ms outage sits
  // far inside the ~119 ms retry budget, so the connection must survive.
  flap.start = sim::msec(5);
  flap.duration = sim::msec(2);
  plan.actions.push_back(flap);
  FaultInjector injector(plan);
  injector.arm(cluster);

  pingPong(cluster, /*seed=*/3);  // asserts in-order completion itself
  checker.finalize(cluster);
  EXPECT_TRUE(checker.ok()) << checker.report();

  fabric::Network& net = cluster.network();
  EXPECT_GT(net.trunkUp(0).framesDropped(), 0u);
  EXPECT_EQ(net.uplink(0).framesDropped(), 0u);  // host links untouched
  EXPECT_EQ(net.uplink(1).framesDropped(), 0u);
  EXPECT_GT(cluster.node(0).device().stats().retransmits, 0u);
}

TEST(ChaosFaults, TrunkActionOnFlatStarFailsLoudly) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  Cluster cluster(cfg);  // star: no trunks
  FaultPlan plan;
  FaultAction a;
  a.kind = FaultKind::LossBurst;
  a.target = fault::FaultTarget::Trunk;
  a.node = 0;
  a.duration = sim::usec(10);
  a.rate = 0.5;
  plan.actions.push_back(a);
  FaultInjector injector(plan);
  EXPECT_THROW(injector.arm(cluster), sim::SimError);
}

TEST(ChaosFaults, EmptyPlanIsByteIdenticalToNoInjector) {
  auto run = [](bool withInjector) {
    ClusterConfig cfg;
    cfg.profile = nic::profileByName("bvia");
    cfg.seed = 99;
    cfg.lossRate = 0.05;  // exercise the base Bernoulli path too
    Cluster cluster(cfg);
    sim::Tracer tracer;
    tracer.enableAll();
    cluster.setTracer(&tracer);
    FaultInjector injector{FaultPlan{}};
    if (withInjector) injector.arm(cluster);
    pingPong(cluster, 5);
    return std::pair<std::uint64_t, sim::SimTime>(tracer.digest(),
                                                  cluster.now());
  };
  const auto bare = run(false);
  const auto armedEmpty = run(true);
  EXPECT_EQ(bare.first, armedEmpty.first);
  EXPECT_EQ(bare.second, armedEmpty.second);
}

// ---------------------------------------------------------------------------
// FaultPlan as data
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, GenerateIsDeterministicPerSeed) {
  FaultPlanParams pp;
  pp.allowPartitions = true;
  const FaultPlan a = FaultPlan::generate(42, pp);
  const FaultPlan b = FaultPlan::generate(42, pp);
  const FaultPlan c = FaultPlan::generate(43, pp);
  EXPECT_EQ(a.toString(), b.toString());
  EXPECT_NE(a.toString(), c.toString());
  EXPECT_EQ(a.actions.size(), pp.actions);
}

TEST(FaultPlanTest, TextRoundTripIsExact) {
  FaultPlanParams pp;
  pp.actions = 12;
  pp.allowPartitions = true;
  const FaultPlan plan = FaultPlan::generate(1234, pp);
  const FaultPlan back = FaultPlan::parse(plan.toString());
  EXPECT_EQ(back.seed, plan.seed);
  ASSERT_EQ(back.actions.size(), plan.actions.size());
  for (std::size_t i = 0; i < plan.actions.size(); ++i) {
    EXPECT_EQ(back.actions[i].kind, plan.actions[i].kind) << i;
    EXPECT_EQ(back.actions[i].node, plan.actions[i].node) << i;
    EXPECT_EQ(back.actions[i].side, plan.actions[i].side) << i;
    EXPECT_EQ(back.actions[i].start, plan.actions[i].start) << i;
    EXPECT_EQ(back.actions[i].duration, plan.actions[i].duration) << i;
    EXPECT_EQ(back.actions[i].rate, plan.actions[i].rate) << i;
    EXPECT_EQ(back.actions[i].extraLatency, plan.actions[i].extraLatency)
        << i;
  }
  EXPECT_EQ(back.toString(), plan.toString());
}

TEST(FaultPlanTest, TrunkTargetRoundTripsAndDefaultStaysImplicit) {
  FaultPlan plan;
  plan.seed = 9;
  FaultAction host;
  host.kind = FaultKind::LossBurst;
  host.node = 1;
  host.duration = sim::usec(5);
  host.rate = 0.5;
  plan.actions.push_back(host);
  FaultAction trunk = host;
  trunk.target = fault::FaultTarget::Trunk;
  trunk.node = 0;
  plan.actions.push_back(trunk);

  const std::string text = plan.toString();
  // Host-link actions print exactly as before the target field existed
  // (pre-trunk plan strings remain parseable AND reproducible), trunk
  // actions carry the explicit key.
  EXPECT_EQ(text.find("target="), text.rfind("target="));
  EXPECT_NE(text.find("target=trunk"), std::string::npos);

  const FaultPlan back = FaultPlan::parse(text);
  ASSERT_EQ(back.actions.size(), 2u);
  EXPECT_EQ(back.actions[0].target, fault::FaultTarget::HostLink);
  EXPECT_EQ(back.actions[1].target, fault::FaultTarget::Trunk);
  EXPECT_EQ(back.toString(), text);
}

}  // namespace
}  // namespace vibe
