// Calibration tests: every qualitative claim the paper makes about the
// three VIA implementations must hold in the reproduction. These guard the
// *mechanisms* — if a refactor of the NIC models breaks a curve shape,
// these tests fail even though the unit tests still pass.
#include <gtest/gtest.h>

#include "nic/profiles.hpp"
#include "vibe/clientserver.hpp"
#include "vibe/datatransfer.hpp"
#include "vibe/nondata.hpp"

namespace vibe {
namespace {

using suite::ClusterConfig;
using suite::ReapMode;
using suite::TransferConfig;

ClusterConfig mvia() { return {nic::mviaProfile()}; }
ClusterConfig bvia() { return {nic::bviaProfile()}; }
ClusterConfig clan() { return {nic::clanProfile()}; }

double pingLatency(const ClusterConfig& c, TransferConfig t) {
  return suite::runPingPong(c, t).latencyUsec;
}

double bandwidth(const ClusterConfig& c, TransferConfig t) {
  return suite::runBandwidth(c, t).bandwidthMBps;
}

// --- Table 1 -------------------------------------------------------------

TEST(CalibrationTable1, OperationCostOrderings) {
  const auto m = suite::runNonData(mvia());
  const auto b = suite::runNonData(bvia());
  const auto c = suite::runNonData(clan());

  // Creating a VI: M-VIA (93) > BVIA (28) > cLAN (3).
  EXPECT_GT(m.createVi, b.createVi);
  EXPECT_GT(b.createVi, c.createVi);
  EXPECT_NEAR(m.createVi, 93, 10);
  EXPECT_NEAR(c.createVi, 3, 1);

  // Connection establishment: M-VIA (6465) > cLAN (2454) > BVIA (496).
  EXPECT_GT(m.connect, c.connect);
  EXPECT_GT(c.connect, b.connect);
  EXPECT_NEAR(m.connect, 6465, 400);
  EXPECT_NEAR(b.connect, 496, 60);
  EXPECT_NEAR(c.connect, 2454, 150);

  // Teardown: cLAN (155) >> BVIA (9) > M-VIA (3).
  EXPECT_GT(c.teardown, b.teardown);
  EXPECT_GT(b.teardown, m.teardown);
  EXPECT_NEAR(c.teardown, 155, 10);

  // CQ create: BVIA (206) > cLAN (54) > M-VIA (17).
  EXPECT_GT(b.createCq, c.createCq);
  EXPECT_GT(c.createCq, m.createCq);
  EXPECT_NEAR(b.createCq, 206, 15);
}

// --- Fig. 1 / Fig. 2 -----------------------------------------------------

TEST(CalibrationMemory, RegistrationShape) {
  const std::vector<std::uint64_t> sizes{4096, 20480, 28672};
  const auto m = suite::runMemCostSweep(mvia(), sizes);
  const auto b = suite::runMemCostSweep(bvia(), sizes);
  const auto c = suite::runMemCostSweep(clan(), sizes);

  // BVIA is the most expensive registration for buffers <= 20 KB.
  EXPECT_GT(b[0].registerUs, m[0].registerUs);
  EXPECT_GT(b[0].registerUs, c[0].registerUs);
  EXPECT_GT(b[1].registerUs, m[1].registerUs);
  // ... but M-VIA's per-page pinning overtakes above 20 KB.
  EXPECT_GT(m[2].registerUs, b[2].registerUs);
  // All costs in the plotted range stay under ~35 us, as in Fig. 1.
  for (const auto& sweep : {m, b, c}) {
    for (const auto& p : sweep) EXPECT_LT(p.registerUs, 35.0);
  }
}

TEST(CalibrationMemory, DeregistrationUnder16usUpTo32MB) {
  const std::vector<std::uint64_t> sizes{4096, 1 << 20, 32u << 20};
  for (const auto& cfg : {mvia(), bvia(), clan()}) {
    const auto sweep = suite::runMemCostSweep(cfg, sizes);
    for (const auto& p : sweep) {
      EXPECT_LT(p.deregisterUs, 16.0) << cfg.profile.name << " @" << p.bytes;
      EXPECT_LT(p.deregisterUs, sweep[0].registerUs + 16.0);
    }
  }
}

// --- Fig. 3 ---------------------------------------------------------------

TEST(CalibrationFig3, SmallMessageLatencyOrdering) {
  TransferConfig t;
  t.msgBytes = 4;
  const double m = pingLatency(mvia(), t);
  const double b = pingLatency(bvia(), t);
  const double c = pingLatency(clan(), t);
  EXPECT_LT(c, m);  // cLAN provides the lowest latency
  EXPECT_LT(m, b);  // M-VIA beats BVIA for short messages
  EXPECT_NEAR(c, 9, 3);
}

TEST(CalibrationFig3, LatencyCrossoverAtLongMessages) {
  // "BVIA outperforms M-VIA for longer messages because M-VIA requires
  // extra data copies."
  TransferConfig t;
  t.msgBytes = 28672;
  EXPECT_LT(pingLatency(bvia(), t), pingLatency(mvia(), t));
  // cLAN stays lowest across the sweep.
  for (std::uint64_t s : {256ull, 4096ull, 28672ull}) {
    TransferConfig p;
    p.msgBytes = s;
    const double c = pingLatency(clan(), p);
    EXPECT_LT(c, pingLatency(mvia(), p)) << s;
    EXPECT_LT(c, pingLatency(bvia(), p)) << s;
  }
}

TEST(CalibrationFig3, BandwidthShape) {
  TransferConfig small;
  small.msgBytes = 1024;
  TransferConfig large;
  large.msgBytes = 28672;
  large.burst = 60;

  // cLAN superiority for a large range of message sizes...
  EXPECT_GT(bandwidth(clan(), small), bandwidth(bvia(), small));
  EXPECT_GT(bandwidth(clan(), small), bandwidth(mvia(), small));
  // ...but BVIA wins for large messages, and M-VIA trails (copies).
  const double mL = bandwidth(mvia(), large);
  const double bL = bandwidth(bvia(), large);
  const double cL = bandwidth(clan(), large);
  EXPECT_GT(bL, cL);
  EXPECT_GT(cL, mL);
  // Physical sanity: nobody beats their link or PCI bounds.
  EXPECT_LT(bL, 125.0);
  EXPECT_LT(cL, 112.5);
  EXPECT_LT(mL, 110.5);
}

// --- Fig. 4 ---------------------------------------------------------------

TEST(CalibrationFig4, BlockingCostsLatencyButFreesCpu) {
  for (const auto& cfg : {mvia(), bvia(), clan()}) {
    TransferConfig poll;
    poll.msgBytes = 256;
    TransferConfig block = poll;
    block.reap = ReapMode::Block;
    const auto p = suite::runPingPong(cfg, poll);
    const auto b = suite::runPingPong(cfg, block);
    EXPECT_GT(b.latencyUsec, p.latencyUsec + 5) << cfg.profile.name;
    // Polling burns the whole CPU (paper: "100% utilization when polling").
    EXPECT_GT(p.receiverCpuPct, 95.0) << cfg.profile.name;
    EXPECT_LT(b.receiverCpuPct, 80.0) << cfg.profile.name;
  }
}

TEST(CalibrationFig4, MviaHasHighestBlockingCpuForSmallMessages) {
  TransferConfig t;
  t.msgBytes = 16;
  t.reap = ReapMode::Block;
  const auto m = suite::runPingPong(mvia(), t);
  const auto b = suite::runPingPong(bvia(), t);
  const auto c = suite::runPingPong(clan(), t);
  EXPECT_GT(m.receiverCpuPct, b.receiverCpuPct);
  EXPECT_GT(m.receiverCpuPct, c.receiverCpuPct);
}

// --- Fig. 5 ---------------------------------------------------------------

TEST(CalibrationFig5, BufferReuseOnlyMattersOnBvia) {
  auto withReuse = [](const ClusterConfig& cfg, int reuse) {
    TransferConfig t;
    t.msgBytes = 12288;
    t.reusePercent = reuse;
    t.bufferPool = reuse == 100 ? 1 : 160;
    t.iterations = 200;
    return suite::runPingPong(cfg, t).latencyUsec;
  };
  // Monotonic degradation on BVIA...
  const double b100 = withReuse(bvia(), 100);
  const double b50 = withReuse(bvia(), 50);
  const double b0 = withReuse(bvia(), 0);
  EXPECT_GT(b50, b100 * 1.05);
  EXPECT_GT(b0, b50 * 1.05);
  // ...severity grows with message size (absolute penalty).
  auto smallPenalty = [&] {
    TransferConfig t;
    t.msgBytes = 4;
    t.iterations = 200;
    const double full = suite::runPingPong(bvia(), t).latencyUsec;
    t.reusePercent = 0;
    t.bufferPool = 160;
    return suite::runPingPong(bvia(), t).latencyUsec - full;
  }();
  EXPECT_GT(b0 - b100, smallPenalty);
  // ...and no effect at all on M-VIA / cLAN.
  EXPECT_NEAR(withReuse(mvia(), 0), withReuse(mvia(), 100), 0.5);
  EXPECT_NEAR(withReuse(clan(), 0), withReuse(clan(), 100), 0.5);
}

TEST(CalibrationFig5, ReuseAlsoCollapsesBviaBandwidth) {
  TransferConfig t;
  t.msgBytes = 12288;
  t.burst = 100;
  const double full = bandwidth(bvia(), t);
  t.reusePercent = 0;
  t.bufferPool = 160;
  const double none = bandwidth(bvia(), t);
  EXPECT_LT(none, full * 0.8);
}

// --- Fig. 6 ---------------------------------------------------------------

TEST(CalibrationFig6, ActiveViCountOnlyMattersOnBvia) {
  auto withVis = [](const ClusterConfig& cfg, int vis) {
    TransferConfig t;
    t.msgBytes = 4;
    t.extraVis = vis - 1;
    return suite::runPingPong(cfg, t).latencyUsec;
  };
  const double b1 = withVis(bvia(), 1);
  const double b8 = withVis(bvia(), 8);
  const double b32 = withVis(bvia(), 32);
  EXPECT_GT(b8, b1 + 10);   // firmware scans 7 more VIs, both directions
  EXPECT_GT(b32, b8 + 30);
  EXPECT_NEAR(withVis(mvia(), 32), withVis(mvia(), 1), 0.5);
  EXPECT_NEAR(withVis(clan(), 32), withVis(clan(), 1), 0.5);
}

// --- §4.3.3 (CQ overhead) --------------------------------------------------

TEST(CalibrationCq, OverheadNegligibleExceptBvia) {
  auto overhead = [](const ClusterConfig& cfg) {
    TransferConfig direct;
    direct.msgBytes = 4;
    TransferConfig viaCq = direct;
    viaCq.reap = ReapMode::PollCq;
    return suite::runPingPong(cfg, viaCq).latencyUsec -
           suite::runPingPong(cfg, direct).latencyUsec;
  };
  EXPECT_LT(overhead(mvia()), 1.0);
  EXPECT_LT(overhead(clan()), 1.0);
  const double b = overhead(bvia());
  EXPECT_GE(b, 2.0);  // paper: 2-5 microseconds
  EXPECT_LE(b, 5.0);
}

// --- Fig. 7 ---------------------------------------------------------------

TEST(CalibrationFig7, TransactionRateShape) {
  auto tps = [](const ClusterConfig& cfg, std::uint32_t reply) {
    suite::ClientServerConfig cs;
    cs.requestBytes = 16;
    cs.replyBytes = reply;
    return suite::runClientServer(cfg, cs).transactionsPerSec;
  };
  // cLAN outperforms both across reply sizes; ~45-55k tps small-reply.
  const double cSmall = tps(clan(), 16);
  EXPECT_GT(cSmall, tps(mvia(), 16));
  EXPECT_GT(cSmall, tps(bvia(), 16));
  EXPECT_GT(cSmall, 40000);
  EXPECT_LT(cSmall, 70000);
  // M-VIA beats BVIA for short replies; BVIA wins in the mid range.
  EXPECT_GT(tps(mvia(), 64), tps(bvia(), 64));
  EXPECT_GT(tps(bvia(), 8192), tps(mvia(), 8192));
}

// --- Reliability-level semantics -------------------------------------------

TEST(CalibrationReliability, SendCompletionOrdering) {
  for (const auto& cfg : {mvia(), bvia(), clan()}) {
    auto completion = [&](nic::Reliability level) {
      TransferConfig t;
      t.msgBytes = 4096;
      t.reliability = level;
      t.measureSendCompletion = true;
      return suite::runPingPong(cfg, t).sendCompletionUsec;
    };
    const double ud = completion(nic::Reliability::Unreliable);
    const double rd = completion(nic::Reliability::ReliableDelivery);
    const double rr = completion(nic::Reliability::ReliableReception);
    EXPECT_LT(ud, rd) << cfg.profile.name;
    EXPECT_LT(rd, rr) << cfg.profile.name;
  }
}

// --- RDMA capability matrix -------------------------------------------------

TEST(CalibrationRdma, CapabilityMatrixMatchesImplementations) {
  TransferConfig t;
  t.msgBytes = 1024;
  t.useRdmaWrite = true;
  EXPECT_TRUE(suite::runPingPong(clan(), t).supported);
  EXPECT_TRUE(suite::runPingPong(mvia(), t).supported);
  EXPECT_FALSE(suite::runPingPong(bvia(), t).supported);
}

}  // namespace
}  // namespace vibe
