// Reliability-engine tests under injected frame loss: go-back-N
// retransmission, exactly-once in-order delivery for Reliable Delivery,
// placement-acknowledged completion for Reliable Reception, and the
// documented drop semantics of Unreliable connections.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using vipl::PendingConn;
using vipl::Provider;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;

constexpr sim::Duration kTimeout = sim::kSecond * 10;
constexpr std::uint64_t kDisc = 5;

struct Buf {
  mem::VirtAddr va = 0;
  mem::MemHandle handle = 0;
};

Buf makeBuf(Provider& nic, mem::PtagId ptag, std::uint64_t len) {
  Buf b;
  b.va = nic.memory().alloc(len, mem::kPageSize);
  vipl::VipMemAttributes ma;
  ma.ptag = ptag;
  EXPECT_EQ(vipl::VipRegisterMem(nic, b.va, len, ma, b.handle),
            VipResult::VIP_SUCCESS);
  return b;
}

void fillSeeded(Provider& nic, mem::VirtAddr va, std::size_t len,
                std::uint8_t seed) {
  std::vector<std::byte> data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = std::byte(static_cast<std::uint8_t>(seed ^ (i * 31)));
  }
  nic.memory().write(va, data);
}

bool checkSeeded(Provider& nic, mem::VirtAddr va, std::size_t len,
                 std::uint8_t seed) {
  std::vector<std::byte> data(len);
  nic.memory().read(va, data);
  for (std::size_t i = 0; i < len; ++i) {
    if (data[i] != std::byte(static_cast<std::uint8_t>(seed ^ (i * 31)))) {
      return false;
    }
  }
  return true;
}

class ReliabilityLossTest
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndLoss, ReliabilityLossTest,
    ::testing::Combine(::testing::Values("mvia", "bvia", "clan"),
                       ::testing::Values(0.0, 0.02, 0.10)),
    [](const auto& paramInfo) {
      return std::get<0>(paramInfo.param) + "_loss" +
             std::to_string(
                 static_cast<int>(std::get<1>(paramInfo.param) * 100));
    });

TEST_P(ReliabilityLossTest, ReliableDeliveryIsExactlyOnceInOrder) {
  const auto [profile, loss] = GetParam();
  ClusterConfig cfg;
  cfg.profile = nic::profileByName(profile);
  cfg.lossRate = loss;
  cfg.seed = 1234;
  Cluster cluster(cfg);

  constexpr int kMessages = 30;
  constexpr std::size_t kBytes = 5000;  // multi-fragment on every profile
  int completed = 0;

  auto sender = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    for (int i = 0; i < kMessages; ++i) {
      fillSeeded(nic, buf.va + i * kBytes, kBytes,
                 static_cast<std::uint8_t>(i));
    }
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> sends;
    for (int i = 0; i < kMessages; ++i) {
      sends.push_back(std::make_unique<VipDescriptor>(VipDescriptor::send(
          buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostSend(nic, vi, sends[i].get()),
                VipResult::VIP_SUCCESS);
    }
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      EXPECT_EQ(done, sends[i].get()) << "send completions out of order";
    }
  };

  auto receiver = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kMessages; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(VipDescriptor::recv(
          buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, recvs[i].get()) << "recv completions out of order";
      EXPECT_EQ(done->cs.length, kBytes);
      EXPECT_TRUE(checkSeeded(nic, buf.va + i * kBytes, kBytes,
                              static_cast<std::uint8_t>(i)))
          << "payload corrupted for message " << i;
      ++completed;
    }
    // Exactly once: no extra completion may show up afterwards.
    VipDescriptor* extra = nullptr;
    EXPECT_EQ(nic.recvDone(vi, extra), VipResult::VIP_NOT_DONE);
  };

  cluster.run({sender, receiver});
  EXPECT_EQ(completed, kMessages);
  if (loss >= 0.10) {
    // At 2% loss a short run can get lucky; at 10% over ~100 frames the
    // probability of zero drops is negligible.
    const auto& stats = cluster.node(0).device().stats();
    EXPECT_GT(stats.retransmits, 0u) << "loss but no retransmissions?";
  }
}

TEST_P(ReliabilityLossTest, ReliableReceptionCompletesAllSends) {
  const auto [profile, loss] = GetParam();
  ClusterConfig cfg;
  cfg.profile = nic::profileByName(profile);
  cfg.lossRate = loss;
  cfg.seed = 77;
  Cluster cluster(cfg);

  constexpr int kMessages = 12;
  constexpr std::size_t kBytes = 3000;

  auto sender = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableReception;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor d =
          VipDescriptor::send(buf.va + i * kBytes, buf.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      // RR: completion implies the data reached target memory.
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    }
  };

  auto receiver = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableReception;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kMessages; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(VipDescriptor::recv(
          buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    }
  };

  cluster.run({sender, receiver});
}

TEST(ReliabilityTest, UnreliableLossDropsButNeverCorrupts) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.lossRate = 0.15;
  cfg.seed = 99;
  Cluster cluster(cfg);

  constexpr int kMessages = 40;
  constexpr std::size_t kBytes = 4000;
  int ok = 0;
  int errored = 0;

  auto sender = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    for (int i = 0; i < kMessages; ++i) {
      fillSeeded(nic, buf.va + i * kBytes, kBytes,
                 static_cast<std::uint8_t>(i));
    }
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::Unreliable;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor d =
          VipDescriptor::send(buf.va + i * kBytes, buf.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      // UD sends complete locally regardless of delivery.
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      // Pace the stream so each message is an independent trial.
      env.self.advance(sim::usec(500), sim::CpuUse::Idle);
    }
  };

  auto receiver = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::Unreliable;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kMessages; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(VipDescriptor::recv(
          buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    // Give the stream time to finish, then drain whatever completed.
    env.self.advance(sim::msec(50), sim::CpuUse::Idle);
    for (;;) {
      VipDescriptor* done = nullptr;
      const VipResult r = nic.recvDone(vi, done);
      if (r == VipResult::VIP_NOT_DONE) break;
      if (r == VipResult::VIP_SUCCESS) {
        // With drops, descriptor slots receive whichever message arrived
        // next, so identify the message by its first byte (== seed) and
        // verify the whole payload is that message, intact.
        for (int i = 0; i < kMessages; ++i) {
          if (done == recvs[i].get()) {
            std::byte first{};
            nic.memory().read(buf.va + i * kBytes, {&first, 1});
            EXPECT_TRUE(checkSeeded(nic, buf.va + i * kBytes, kBytes,
                                    static_cast<std::uint8_t>(first)));
          }
        }
        ++ok;
      } else {
        ++errored;  // PartialMessage from mid-message loss
      }
    }
  };

  cluster.run({sender, receiver});
  EXPECT_GT(ok, 0);
  EXPECT_LT(ok, kMessages);  // 15% frame loss must kill some messages
  EXPECT_LE(ok + errored, kMessages);
  const auto& rxStats = cluster.node(1).device().stats();
  EXPECT_EQ(rxStats.retransmits, 0u);
  EXPECT_EQ(cluster.node(0).device().stats().retransmits, 0u);
}

// ---------------------------------------------------------------------------
// Loss bursts: a window of 100% frame loss (link down) that ends before the
// retry budget runs out. Reliable levels must ride it out and resume
// exactly-once in-order delivery; Unreliable must lose the burst's messages
// without ever retransmitting.
// ---------------------------------------------------------------------------

/// Shared driver: stream kMessages through a 100%-loss window on the
/// sender's uplink, then assert complete in-order delivery and that the
/// recovery is visible both in NicStats and in the Reliability trace.
void runLossBurstRecovery(nic::Reliability rel) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.seed = 321;
  Cluster cluster(cfg);

  sim::Tracer tracer;
  tracer.enable(sim::TraceCategory::Reliability);
  cluster.setTracer(&tracer);

  // Connection setup takes ~2.7ms of virtual time (the CM dialog is
  // loss-exempt), so a [0, 6ms) window blacks out the first ~3ms of data.
  // The ~3ms outage costs 2-3 RTO strikes, well under the budget of 16.
  cluster.network().uplink(0).scheduleLossWindow(0, sim::msec(6), 1.0);

  constexpr int kMessages = 40;
  constexpr std::size_t kBytes = 5000;
  int completed = 0;

  auto sender = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    for (int i = 0; i < kMessages; ++i) {
      fillSeeded(nic, buf.va + i * kBytes, kBytes,
                 static_cast<std::uint8_t>(i));
    }
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = rel;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> sends;
    for (int i = 0; i < kMessages; ++i) {
      sends.push_back(std::make_unique<VipDescriptor>(VipDescriptor::send(
          buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostSend(nic, vi, sends[i].get()),
                VipResult::VIP_SUCCESS);
    }
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      EXPECT_EQ(done, sends[i].get()) << "send completions out of order";
    }
    EXPECT_EQ(vi->state(), vipl::ViState::Connected)
        << "burst shorter than the retry budget must not break the VI";
  };

  auto receiver = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = rel;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kMessages; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(VipDescriptor::recv(
          buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, recvs[i].get()) << "delivery out of order after burst";
      EXPECT_TRUE(checkSeeded(nic, buf.va + i * kBytes, kBytes,
                              static_cast<std::uint8_t>(i)));
      ++completed;
    }
    VipDescriptor* extra = nullptr;
    EXPECT_EQ(nic.recvDone(vi, extra), VipResult::VIP_NOT_DONE)
        << "retransmissions must not duplicate deliveries";
  };

  cluster.run({sender, receiver});
  EXPECT_EQ(completed, kMessages);

  // The outage must actually have exercised the retransmission machinery,
  // and the recovery must be visible in the Reliability trace stream.
  EXPECT_GT(cluster.node(0).device().stats().retransmits, 0u);
  int rtoRecords = 0;
  for (const auto& rec : tracer.snapshot()) {
    if (rec.category == sim::TraceCategory::Reliability &&
        rec.message.compare(0, 4, "RTO ") == 0) {
      ++rtoRecords;
    }
  }
  EXPECT_GT(rtoRecords, 0) << "no RTO retransmissions traced";
}

TEST(ReliabilityTest, LossBurstRecoveryReliableDelivery) {
  runLossBurstRecovery(nic::Reliability::ReliableDelivery);
}

TEST(ReliabilityTest, LossBurstRecoveryReliableReception) {
  runLossBurstRecovery(nic::Reliability::ReliableReception);
}

TEST(ReliabilityTest, LossBurstOnUnreliableDropsWithoutRetransmission) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.seed = 321;
  Cluster cluster(cfg);

  // Data flows from ~2.7ms (post-connect); the sender paces one message
  // per 100us, so a [3ms, 5ms) outage swallows a middle chunk.
  cluster.network().uplink(0).scheduleLossWindow(sim::msec(3), sim::msec(5),
                                                 1.0);

  constexpr int kMessages = 40;
  constexpr std::size_t kBytes = 512;  // single-fragment on every profile
  int delivered = 0;

  auto sender = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kBytes);
    fillSeeded(nic, buf.va, kBytes, 0x5A);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::Unreliable;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    for (int i = 0; i < kMessages; ++i) {
      VipDescriptor d = VipDescriptor::send(buf.va, buf.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      env.self.advance(sim::usec(100), sim::CpuUse::Idle);
    }
  };

  auto receiver = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kMessages * kBytes);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::Unreliable;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kMessages; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(VipDescriptor::recv(
          buf.va + i * kBytes, buf.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    for (;;) {
      VipDescriptor* done = nullptr;
      const VipResult r = nic.recvWait(vi, sim::msec(20), done);
      if (r != VipResult::VIP_SUCCESS) break;
      ++delivered;
    }
  };

  cluster.run({sender, receiver});
  // The burst's messages are gone for good; everything else arrived, and
  // nothing was ever retransmitted.
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, kMessages);
  EXPECT_EQ(cluster.node(0).device().stats().retransmits, 0u);
  EXPECT_GT(cluster.network().uplink(0).framesDropped(), 0u);
}

TEST(ReliabilityTest, ReliableMissingDescriptorBreaksConnection) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  Cluster cluster(cfg);
  bool senderSawError = false;
  bool receiverSawError = false;

  auto sender = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    nic.setErrorCallback(
        [&](Vi*, nic::WorkStatus) { senderSawError = true; });
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    VipDescriptor d = VipDescriptor::send(buf.va, buf.handle, 16);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    EXPECT_EQ(nic.sendWait(vi, kTimeout, done),
              VipResult::VIP_DESCRIPTOR_ERROR);
    EXPECT_EQ(d.cs.status.error, nic::WorkStatus::NoDescriptor);
    EXPECT_EQ(vi->state(), vipl::ViState::Error);
  };

  auto receiver = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    nic.setErrorCallback(
        [&](Vi*, nic::WorkStatus why) {
          receiverSawError = true;
          EXPECT_EQ(why, nic::WorkStatus::NoDescriptor);
        });
    auto ptag = vipl::VipCreatePtag(nic);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    // Deliberately never post a receive descriptor.
    env.self.advance(sim::msec(5), sim::CpuUse::Idle);
    EXPECT_EQ(vi->state(), vipl::ViState::Error);
  };

  cluster.run({sender, receiver});
  EXPECT_TRUE(senderSawError);
  EXPECT_TRUE(receiverSawError);
}

TEST(ReliabilityTest, LossySendRecvUnderRdmaWrite) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.lossRate = 0.05;
  cfg.seed = 3;
  Cluster cluster(cfg);
  mem::VirtAddr target = 0;
  mem::MemHandle targetH = 0;
  constexpr std::size_t kBytes = 20000;  // several fragments
  bool verified = false;

  auto writer = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf src = makeBuf(nic, ptag, kBytes);
    fillSeeded(nic, src.va, kBytes, 0x5C);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableReception;
    va.enableRdmaWrite = true;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    VipDescriptor d = VipDescriptor::rdmaWrite(src.va, src.handle, kBytes,
                                               target, targetH);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    // RR: completion implies remote placement even under loss.
    ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
  };

  auto targetNode = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf dst;
    dst.va = nic.memory().alloc(kBytes, mem::kPageSize);
    vipl::VipMemAttributes ma;
    ma.ptag = ptag;
    ma.enableRdmaWrite = true;
    ASSERT_EQ(vipl::VipRegisterMem(nic, dst.va, kBytes, ma, dst.handle),
              VipResult::VIP_SUCCESS);
    target = dst.va;
    targetH = dst.handle;
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableReception;
    va.enableRdmaWrite = true;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    // Wait out retransmissions, then verify placement.
    env.self.advance(sim::msec(100), sim::CpuUse::Idle);
    EXPECT_TRUE(checkSeeded(nic, dst.va, kBytes, 0x5C));
    verified = true;
  };

  cluster.run({writer, targetNode});
  EXPECT_TRUE(verified);
}

}  // namespace
}  // namespace vibe
