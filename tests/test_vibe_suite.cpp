// Tests for the VIBe suite infrastructure: cluster assembly, result
// tables, benchmark plumbing sanity, and cross-profile invariants of the
// measurement machinery itself.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "vibe/clientserver.hpp"
#include "vibe/cluster.hpp"
#include "vibe/datatransfer.hpp"
#include "vibe/nondata.hpp"
#include "vibe/report.hpp"
#include "vibe/results.hpp"

namespace vibe::suite {
namespace {

TEST(ResultTableTest, RenderTextAlignsAndTrims) {
  ResultTable t("demo", {"bytes", "value"});
  t.addRow({4, 1.5});
  t.addRow({28672, 123.456});
  const std::string text = t.renderText(2);
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_NE(text.find("123.46"), std::string::npos);
  EXPECT_EQ(text.find("1.50"), std::string::npos);  // trailing zero trimmed
}

TEST(ResultTableTest, NanRendersAsNotSupported) {
  ResultTable t("demo", {"x"});
  t.addRow({std::numeric_limits<double>::quiet_NaN()});
  EXPECT_NE(t.renderText().find("n/s"), std::string::npos);
  EXPECT_EQ(t.renderCsv().find("nan"), std::string::npos);
  // Machine-readable output must never carry the human-readable marker.
  EXPECT_EQ(t.renderCsv().find("n/s"), std::string::npos);
  EXPECT_EQ(t.renderJson().find("n/s"), std::string::npos);
}

TEST(ResultTableTest, CsvNanCellsRoundTripAsEmpty) {
  // A NaN ("not supported") cell must come back as an empty field that a
  // CSV reader can turn into NaN — not as text it would choke on.
  ResultTable t("demo", {"a", "b", "c"});
  t.addRow({1.5, std::numeric_limits<double>::quiet_NaN(), 28672});
  std::istringstream csv(t.renderCsv());
  std::string header, row;
  std::getline(csv, header);
  std::getline(csv, row);
  EXPECT_EQ(header, "a,b,c");
  // Re-parse the row the way a plotting script would.
  std::istringstream cells(row);
  std::string cell;
  std::vector<double> parsed;
  while (std::getline(cells, cell, ',')) {
    parsed.push_back(cell.empty() ? std::numeric_limits<double>::quiet_NaN()
                                  : std::stod(cell));
  }
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed[0], 1.5);
  EXPECT_TRUE(std::isnan(parsed[1]));
  EXPECT_DOUBLE_EQ(parsed[2], 28672.0);
}

TEST(ResultTableTest, JsonRendersTitleColumnsAndNullForNan) {
  ResultTable t("demo \"quoted\"", {"size", "lat"});
  t.addRow({4, 33.5});
  t.addRow({16, std::numeric_limits<double>::quiet_NaN()});
  const std::string json = t.renderJson();
  EXPECT_EQ(json, "{\"title\":\"demo \\\"quoted\\\"\","
                  "\"columns\":[\"size\",\"lat\"],"
                  "\"rows\":[[4,33.5],[16,null]]}");
}

TEST(ResultTableTest, CsvRoundTripsValues) {
  ResultTable t("demo", {"a", "b"});
  t.addRow({1.25, 2.5});
  std::istringstream csv(t.renderCsv());
  std::string header, row;
  std::getline(csv, header);
  std::getline(csv, row);
  EXPECT_EQ(header, "a,b");
  EXPECT_EQ(row, "1.25,2.5");
}

TEST(ResultTableTest, ColumnLookupAndBounds) {
  ResultTable t("demo", {"a", "b"});
  t.addRow({1, 2});
  EXPECT_EQ(t.columnIndex("b"), 1u);
  EXPECT_THROW(t.columnIndex("zz"), std::invalid_argument);
  EXPECT_THROW(t.addRow({1}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 2.0);
}

TEST(SweepTest, PaperAxesMatchThePlots) {
  const auto sizes = paperMessageSizes();
  EXPECT_EQ(sizes.front(), 4u);
  EXPECT_EQ(sizes.back(), 28672u);
  EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
  EXPECT_EQ(extendedBufferSizes().back(), 32u << 20);
}

TEST(ClusterTest, BuildsProvidersWithNames) {
  ClusterConfig cfg;
  cfg.profile = nic::clanProfile();
  cfg.nodes = 3;
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.nodeCount(), 3u);
  EXPECT_EQ(cluster.node(2).hostName(), "node2");
  EXPECT_EQ(cluster.node(0).nodeId(), 0u);
  EXPECT_THROW(cluster.node(3), std::out_of_range);
}

TEST(ClusterTest, RejectsTooManyPrograms) {
  ClusterConfig cfg;
  cfg.profile = nic::clanProfile();
  cfg.nodes = 1;
  Cluster cluster(cfg);
  EXPECT_THROW(cluster.run({nullptr, nullptr}), sim::SimError);
}

TEST(MeasurementTest, DeterministicAcrossRuns) {
  TransferConfig t;
  t.msgBytes = 1024;
  ClusterConfig cfg;
  cfg.profile = nic::bviaProfile();
  const auto a = runPingPong(cfg, t);
  const auto b = runPingPong(cfg, t);
  EXPECT_DOUBLE_EQ(a.latencyUsec, b.latencyUsec);
  EXPECT_DOUBLE_EQ(a.senderCpuPct, b.senderCpuPct);
}

class LatencyMonotoneSweep : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Profiles, LatencyMonotoneSweep,
                         ::testing::Values("mvia", "bvia", "clan"),
                         [](const auto& pi) { return pi.param; });

TEST_P(LatencyMonotoneSweep, LatencyGrowsWithMessageSize) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName(GetParam());
  double prev = 0;
  for (const std::uint64_t size : paperMessageSizes()) {
    TransferConfig t;
    t.msgBytes = size;
    t.iterations = 50;
    t.warmup = 10;
    const double lat = runPingPong(cfg, t).latencyUsec;
    EXPECT_GE(lat, prev) << "size " << size;
    prev = lat;
  }
}

TEST_P(LatencyMonotoneSweep, CpuUtilizationIsAPercentage) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName(GetParam());
  for (const auto reap : {ReapMode::Poll, ReapMode::Block}) {
    TransferConfig t;
    t.msgBytes = 2048;
    t.reap = reap;
    const auto r = runPingPong(cfg, t);
    EXPECT_GE(r.senderCpuPct, 0.0);
    EXPECT_LE(r.senderCpuPct, 100.5);
    EXPECT_GE(r.receiverCpuPct, 0.0);
    EXPECT_LE(r.receiverCpuPct, 100.5);
  }
}

TEST_P(LatencyMonotoneSweep, BandwidthSaturatesBelowPhysicalBound) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName(GetParam());
  const double bound =
      std::min(cfg.profile.linkMBps, cfg.profile.dmaMBps);
  double prev = 0;
  for (const std::uint64_t size : {256ull, 2048ull, 16384ull}) {
    TransferConfig t;
    t.msgBytes = size;
    t.burst = 80;
    const double bw = runBandwidth(cfg, t).bandwidthMBps;
    EXPECT_GT(bw, 0.0);
    EXPECT_LE(bw, bound);
    EXPECT_GE(bw, prev * 0.95);  // roughly nondecreasing with size
    prev = bw;
  }
}

TEST(MeasurementTest, PipelineDepthOneMatchesLatencyPacing) {
  // depth-1 streaming is a half-duplex send-ack cadence; its bandwidth
  // must be well below the saturated pipeline's.
  ClusterConfig cfg;
  cfg.profile = nic::clanProfile();
  TransferConfig t;
  t.msgBytes = 4096;
  t.pipelineDepth = 1;
  const double shallow = runBandwidth(cfg, t).bandwidthMBps;
  t.pipelineDepth = 0;
  const double deep = runBandwidth(cfg, t).bandwidthMBps;
  EXPECT_LT(shallow, deep * 0.7);
}

TEST(MeasurementTest, MultiSegmentDescriptorsCostMore) {
  ClusterConfig cfg;
  cfg.profile = nic::bviaProfile();
  TransferConfig t;
  t.msgBytes = 4096;
  const double one = runPingPong(cfg, t).latencyUsec;
  t.dataSegments = 16;
  const double many = runPingPong(cfg, t).latencyUsec;
  EXPECT_GT(many, one + 2.0);
}

TEST(MeasurementTest, NotifyFallsBetweenPollAndBlock) {
  ClusterConfig cfg;
  cfg.profile = nic::clanProfile();
  TransferConfig t;
  t.msgBytes = 64;
  const double poll = runPingPong(cfg, t).latencyUsec;
  t.reap = ReapMode::Notify;
  const double notify = runPingPong(cfg, t).latencyUsec;
  t.reap = ReapMode::Block;
  const double block = runPingPong(cfg, t).latencyUsec;
  EXPECT_GT(notify, poll);
  EXPECT_LT(notify, block);
}

TEST(MeasurementTest, ClientServerRatesAreConsistentWithRtt) {
  ClusterConfig cfg;
  cfg.profile = nic::mviaProfile();
  ClientServerConfig cs;
  cs.requestBytes = 16;
  cs.replyBytes = 256;
  const auto r = runClientServer(cfg, cs);
  EXPECT_NEAR(r.transactionsPerSec, 1e6 / r.roundTripUsec,
              r.transactionsPerSec * 0.01);
}

TEST(MeasurementTest, LatencyPercentilesAreCoherent) {
  ClusterConfig cfg;
  cfg.profile = nic::clanProfile();
  TransferConfig t;
  t.msgBytes = 1024;
  t.iterations = 120;
  const auto r = runPingPong(cfg, t);
  EXPECT_GT(r.latencyP50Usec, 0);
  EXPECT_LE(r.latencyP50Usec, r.latencyP99Usec);
  EXPECT_LE(r.latencyP99Usec, r.latencyMaxUsec);
  // Steady-state base config: essentially no jitter.
  EXPECT_NEAR(r.latencyP50Usec, r.latencyUsec, 0.5);
  EXPECT_NEAR(r.latencyMaxUsec, r.latencyP50Usec, 1.0);
}

TEST(MeasurementTest, ReuseSweepWidensLatencyDistribution) {
  // At 50% reuse, iterations alternate between cached and cold
  // translations on the BVIA model: p99 pulls away from p50.
  ClusterConfig cfg;
  cfg.profile = nic::bviaProfile();
  TransferConfig t;
  t.msgBytes = 12288;
  t.iterations = 200;
  t.reusePercent = 50;
  t.bufferPool = 160;
  const auto r = runPingPong(cfg, t);
  EXPECT_GT(r.latencyP99Usec, r.latencyP50Usec + 5.0);
}

TEST(ClusterTreeTopology, CrossLeafLatencyExceedsSameLeaf) {
  ClusterConfig cfg;
  cfg.profile = nic::clanProfile();
  cfg.nodes = 4;
  cfg.nodesPerSwitch = 2;
  // Same-leaf ping (0 <-> 1) vs cross-leaf (0 <-> 2): the TransferConfig
  // harness always uses nodes 0/1, so compare via two cluster layouts.
  TransferConfig t;
  t.msgBytes = 4;
  const double sameLeaf = runPingPong(cfg, t).latencyUsec;
  cfg.nodesPerSwitch = 1;  // every host on its own leaf: 0<->1 crosses root
  const double crossLeaf = runPingPong(cfg, t).latencyUsec;
  EXPECT_GT(crossLeaf, sameLeaf + 1.0);
  // Flat star matches the same-leaf case shape.
  cfg.nodesPerSwitch = 0;
  cfg.nodes = 2;
  EXPECT_NEAR(runPingPong(cfg, t).latencyUsec, sameLeaf, 0.01);
}

TEST(SurveyTest, RunSurveyProducesCoherentReport) {
  SurveyOptions opts;
  opts.messageSizes = {4, 4096};
  opts.replySizes = {16};
  opts.iterations = 40;
  opts.warmup = 8;
  opts.regSizes = {4096};
  const SurveyResult r = runSurvey(nic::clanProfile(), opts);
  EXPECT_EQ(r.implementation, "cLAN VIA (Giganet)");
  ASSERT_EQ(r.transfers.size(), 2u);
  EXPECT_GT(r.transfers[0].latencyPollUsec, 0);
  EXPECT_GT(r.transfers[1].bandwidthMBps, r.transfers[0].bandwidthMBps);
  EXPECT_GT(r.transfers[0].latencyBlockUsec, r.transfers[0].latencyPollUsec);
  EXPECT_TRUE(r.rdmaWriteSupported);
  EXPECT_NEAR(r.noReuseOverheadUsec, 0.0, 0.5);  // cLAN: reuse-insensitive
  ASSERT_EQ(r.transactions.size(), 1u);
  EXPECT_GT(r.transactions[0].transactionsPerSec, 1000);

  const std::string text = renderSurvey(r);
  EXPECT_NE(text.find("cLAN"), std::string::npos);
  EXPECT_NE(text.find("[1] non-data-transfer"), std::string::npos);
  EXPECT_NE(text.find("[2] data transfer"), std::string::npos);
  EXPECT_NE(text.find("[3] client/server"), std::string::npos);
  EXPECT_NE(text.find("component probes"), std::string::npos);
}

TEST(SurveyTest, BviaSurveyFlagsItsWeaknesses) {
  SurveyOptions opts;
  opts.messageSizes = {4};
  opts.replySizes = {16};
  opts.iterations = 40;
  opts.warmup = 8;
  opts.regSizes = {4096};
  opts.probeBytes = 12288;
  const SurveyResult r = runSurvey(nic::bviaProfile(), opts);
  EXPECT_FALSE(r.rdmaWriteSupported);
  EXPECT_GT(r.noReuseOverheadUsec, 20);   // translation-cache misses
  EXPECT_GT(r.multiViOverheadUsec, 20);   // firmware VI scans
  EXPECT_GT(r.cqOverheadUsec, 1.5);       // NIC-resident CQ records
  EXPECT_NE(renderSurvey(r).find("not supported"), std::string::npos);
}

TEST(MeasurementTest, NonDataCostsArePositiveAndFinite) {
  const auto r = suite::runNonData({nic::clanProfile()});
  for (double v : {r.createVi, r.destroyVi, r.connect, r.teardown,
                   r.createCq, r.destroyCq}) {
    EXPECT_GT(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace vibe::suite
