// Tests for the serving layer: open-loop arrival generation (seed
// determinism, mean-rate preservation, MMPP burstiness, the on-wire
// stamp) and every AdmissionQueue policy — bounded backlog under both
// admit policies, deadline shed, token bucket, the CoDel control law —
// plus the serve.* metrics and the shed/recover trace breadcrumbs.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/loadgen.hpp"
#include "simcore/trace.hpp"

namespace vibe {
namespace {

using serve::AdmissionQueue;
using serve::AdmitPolicy;
using serve::ArrivalConfig;
using serve::Dequeue;
using serve::PolicyConfig;
using serve::Request;
using serve::Stamp;
using serve::Verdict;

// ---------------------------------------------------------------- loadgen

TEST(LoadGen, PoissonDeterministicPerSeedAndClient) {
  ArrivalConfig cfg;
  cfg.ratePerSec = 5000;
  cfg.horizon = sim::msec(100);
  const auto a = serve::generateArrivals(cfg, 42, 3);
  const auto b = serve::generateArrivals(cfg, 42, 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, serve::generateArrivals(cfg, 43, 3));
  EXPECT_NE(a, serve::generateArrivals(cfg, 42, 4));
}

TEST(LoadGen, ArrivalsSortedAndInsideWindow) {
  ArrivalConfig cfg;
  cfg.ratePerSec = 2000;
  cfg.start = sim::msec(7);
  cfg.horizon = sim::msec(50);
  const auto a = serve::generateArrivals(cfg, 1, 0);
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], cfg.start);
    EXPECT_LT(a[i], cfg.start + cfg.horizon);
    if (i > 0) {
      EXPECT_GE(a[i], a[i - 1]);
    }
  }
}

TEST(LoadGen, PoissonMeanRateConverges) {
  ArrivalConfig cfg;
  cfg.ratePerSec = 20000;
  cfg.horizon = sim::kSecond;
  const auto a = serve::generateArrivals(cfg, 9, 0);
  // sd of a Poisson count at n=20000 is ~141; 5% is a ~7-sigma corridor.
  EXPECT_NEAR(static_cast<double>(a.size()), 20000.0, 1000.0);
}

// Squared coefficient of variation of the inter-arrival gaps: 1 for a
// Poisson process, larger for anything burstier.
double gapCv2(const std::vector<sim::SimTime>& a) {
  double sum = 0, sum2 = 0;
  const double n = static_cast<double>(a.size() - 1);
  for (std::size_t i = 1; i < a.size(); ++i) {
    const double g = static_cast<double>(a[i] - a[i - 1]);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  return (sum2 / n - mean * mean) / (mean * mean);
}

TEST(LoadGen, MmppPreservesMeanButIsBurstier) {
  ArrivalConfig cfg;
  cfg.ratePerSec = 20000;
  cfg.horizon = sim::kSecond;
  const auto poisson = serve::generateArrivals(cfg, 5, 0);
  cfg.meanOn = sim::msec(5);
  cfg.meanOff = sim::msec(5);
  const auto mmpp = serve::generateArrivals(cfg, 5, 0);
  // Long-run mean is preserved (looser corridor: on/off dwell variance
  // adds to the count variance)...
  EXPECT_NEAR(static_cast<double>(mmpp.size()), 20000.0, 3000.0);
  // ...but the short-run process is measurably burstier.
  EXPECT_GT(gapCv2(mmpp), 1.5 * gapCv2(poisson));
}

TEST(LoadGen, StampRoundTrip) {
  const std::vector<std::byte> payload(5, std::byte{0xAB});
  const Stamp in{sim::msec(3), sim::msec(11)};
  const std::vector<std::byte> wire = serve::stampArgs(in, payload);
  ASSERT_EQ(wire.size(), serve::kStampBytes + payload.size());
  Stamp out;
  ASSERT_TRUE(serve::readStamp(wire, out));
  EXPECT_EQ(out.genTime, in.genTime);
  EXPECT_EQ(out.deadline, in.deadline);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(wire[serve::kStampBytes + i], payload[i]);
  }
  const std::vector<std::byte> runt(serve::kStampBytes - 1);
  EXPECT_FALSE(serve::readStamp(runt, out));
}

// -------------------------------------------------------------- admission

Request req(std::uint32_t token, sim::SimTime deadline = 0) {
  Request r;
  r.client = 0;
  r.token = token;
  r.method = 1;
  r.deadline = deadline;
  return r;
}

TEST(Admission, RejectNewBoundsTheBacklog) {
  PolicyConfig cfg;
  cfg.backlogLimit = 4;
  cfg.admit = AdmitPolicy::RejectNew;
  AdmissionQueue q(cfg);
  std::vector<Request> evicted;
  for (std::uint32_t t = 1; t <= 6; ++t) {
    const Verdict v = q.offer(req(t), sim::msec(1), evicted);
    EXPECT_EQ(v, t <= 4 ? Verdict::Admitted : Verdict::RejectedBacklog);
  }
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.stats().offered, 6u);
  EXPECT_EQ(q.stats().admitted, 4u);
  EXPECT_EQ(q.stats().rejectedBacklog, 2u);
}

TEST(Admission, DropOldestEvictsFromTheHead) {
  PolicyConfig cfg;
  cfg.backlogLimit = 4;
  cfg.admit = AdmitPolicy::DropOldest;
  AdmissionQueue q(cfg);
  std::vector<Request> evicted;
  for (std::uint32_t t = 1; t <= 6; ++t) {
    EXPECT_EQ(q.offer(req(t), sim::msec(1), evicted), Verdict::Admitted);
  }
  // Tokens 1 and 2 made room for 5 and 6, in eviction order.
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0].token, 1u);
  EXPECT_EQ(evicted[1].token, 2u);
  EXPECT_EQ(q.stats().evicted, 2u);
  Request out;
  for (std::uint32_t expect = 3; expect <= 6; ++expect) {
    ASSERT_EQ(q.next(sim::msec(2), out), Dequeue::Serve);
    EXPECT_EQ(out.token, expect);
  }
  EXPECT_EQ(q.next(sim::msec(2), out), Dequeue::Empty);
}

TEST(Admission, DeadlineShedDropsExpiredHeads) {
  PolicyConfig cfg;
  cfg.deadlineShed = true;
  AdmissionQueue q(cfg);
  std::vector<Request> evicted;
  q.offer(req(1, /*deadline=*/sim::msec(2)), sim::msec(1), evicted);
  q.offer(req(2, /*deadline=*/sim::msec(3)), sim::msec(1), evicted);
  q.offer(req(3, /*deadline=*/sim::msec(9)), sim::msec(1), evicted);
  q.offer(req(4, /*deadline=*/0), sim::msec(1), evicted);  // unstamped
  Request out;
  EXPECT_EQ(q.next(sim::msec(5), out), Dequeue::ShedDeadline);
  EXPECT_EQ(out.token, 1u);
  EXPECT_EQ(q.next(sim::msec(5), out), Dequeue::ShedDeadline);
  EXPECT_EQ(out.token, 2u);
  EXPECT_EQ(q.next(sim::msec(5), out), Dequeue::Serve);
  EXPECT_EQ(out.token, 3u);
  // deadline 0 = none: never shed, no matter how old.
  EXPECT_EQ(q.next(sim::kSecond, out), Dequeue::Serve);
  EXPECT_EQ(out.token, 4u);
  EXPECT_EQ(q.stats().shedDeadline, 2u);
  EXPECT_EQ(q.stats().served, 2u);
}

TEST(Admission, TokenBucketStartsFullAndRefills) {
  PolicyConfig cfg;
  cfg.bucket.ratePerSec = 1000;  // one token per ms
  cfg.bucket.burst = 2;
  AdmissionQueue q(cfg);
  std::vector<Request> evicted;
  EXPECT_EQ(q.offer(req(1), 0, evicted), Verdict::Admitted);
  EXPECT_EQ(q.offer(req(2), 0, evicted), Verdict::Admitted);
  EXPECT_EQ(q.offer(req(3), 0, evicted), Verdict::RejectedRate);
  // One refill interval later exactly one more fits.
  EXPECT_EQ(q.offer(req(4), sim::msec(1), evicted), Verdict::Admitted);
  EXPECT_EQ(q.offer(req(5), sim::msec(1), evicted), Verdict::RejectedRate);
  EXPECT_EQ(q.stats().rejectedRate, 2u);
}

TEST(Admission, CodelShedsOnlyAfterSustainedDelay) {
  PolicyConfig cfg;
  cfg.codel.target = sim::msec(1);
  cfg.codel.interval = sim::msec(10);
  AdmissionQueue q(cfg);
  std::vector<Request> evicted;
  for (std::uint32_t t = 1; t <= 8; ++t) q.offer(req(t), 0, evicted);
  Request out;
  // Sojourn above target arms the interval timer but does not drop yet.
  EXPECT_EQ(q.next(sim::msec(2), out), Dequeue::Serve);
  EXPECT_EQ(q.next(sim::msec(5), out), Dequeue::Serve);
  // Interval expired (armed at 2 ms + 10 ms): the control law kicks in.
  EXPECT_EQ(q.next(sim::msec(12), out), Dequeue::ShedCodel);
  EXPECT_EQ(out.token, 3u);
  // dropNext = 12 + interval: no second drop inside the same window.
  EXPECT_EQ(q.next(sim::msec(12), out), Dequeue::Serve);
  EXPECT_EQ(q.next(sim::msec(22), out), Dequeue::ShedCodel);
  EXPECT_EQ(q.stats().shedCodel, 2u);
  // A fresh head under target ends the dropping state.
  q.offer(req(100), sim::msec(22), evicted);
  while (q.next(sim::msec(22), out) == Dequeue::Serve && out.token != 100) {
  }
  EXPECT_EQ(out.token, 100u);
  EXPECT_EQ(q.stats().shedCodel, 2u);
}

TEST(Admission, ShedRecoverBreadcrumbsAndMetrics) {
  PolicyConfig cfg;
  cfg.backlogLimit = 1;
  cfg.admit = AdmitPolicy::RejectNew;
  AdmissionQueue q(cfg);
  obs::MetricsRegistry metrics;
  q.setMetrics(&metrics);
  sim::Tracer tracer(64);
  tracer.enable(sim::TraceCategory::User);
  std::vector<std::string> records;
  tracer.setSink([&](const sim::TraceRecord& r) {
    records.push_back(r.message);
  });
  q.setTracer(&tracer);

  std::vector<Request> evicted;
  EXPECT_EQ(q.offer(req(1), sim::msec(1), evicted), Verdict::Admitted);
  EXPECT_FALSE(q.shedding());
  EXPECT_EQ(q.offer(req(2), sim::msec(1), evicted),
            Verdict::RejectedBacklog);
  EXPECT_TRUE(q.shedding());
  // Only the first shed of the episode leaves a breadcrumb.
  EXPECT_EQ(q.offer(req(3), sim::msec(2), evicted),
            Verdict::RejectedBacklog);
  Request out;
  EXPECT_EQ(q.next(sim::msec(3), out), Dequeue::Serve);
  EXPECT_EQ(q.next(sim::msec(3), out), Dequeue::Empty);
  EXPECT_FALSE(q.shedding());

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].rfind("serve shed backlog", 0), 0u);
  EXPECT_EQ(records[1], "serve recover");
  EXPECT_EQ(metrics.counter("serve/serve.offered").value(), 3u);
  EXPECT_EQ(metrics.counter("serve/serve.admitted").value(), 1u);
  EXPECT_EQ(metrics.counter("serve/serve.rejected_backlog").value(), 2u);
  EXPECT_EQ(metrics.counter("serve/serve.served").value(), 1u);
}

TEST(Admission, PolicyNamesRoundTrip) {
  EXPECT_STREQ(serve::toString(AdmitPolicy::RejectNew), "reject_new");
  EXPECT_STREQ(serve::toString(AdmitPolicy::DropOldest), "drop_oldest");
}

}  // namespace
}  // namespace vibe
