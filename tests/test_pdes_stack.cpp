// VIA-stack-on-PDES equivalence wall: the whole stack (VIPL providers,
// reliability layer, sessions, RPC) runs on a hosted ShardedEngine with
// one domain per fat-tree switch, and every observable — per-node trace
// digests, NIC counters, metrics-registry text, span-profiler
// attribution, time-series CSV, end time — must be byte-identical to the
// classic serial engine, at every worker shard count.
//
// Two comparison contracts, deliberately distinct:
//
//   serial vs sharded    per-node tracers attached directly to each NIC
//                        device. A node's stream is totally ordered by
//                        its own domain schedule, so it is comparable
//                        across engine modes. (A single global tracer is
//                        NOT: serial interleaves same-timestamp records
//                        from different nodes by global execution order,
//                        which no deterministic sharded merge reproduces.)
//   sharded vs sharded   the Cluster-level shadow-replay tracer: its
//                        (time, node, record) merge order is a function
//                        of the simulation alone, so the global digest is
//                        identical at any shard count >= 1.
//
// Workloads cover the layers the port touches: raw VIPL ping-pong with
// frame loss (retransmission timers), a 15-client RPC fan-in through one
// server CQ, cross-pod multi-fragment streaming on three concurrent
// pairs, and a session flap driven by a host partition (reconnect +
// exactly-once replay under fault injection).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fabric/domain.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "nic/profiles.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "session/session.hpp"
#include "upper/rpc/rpc.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

namespace vibe {
namespace {

using fault::FaultAction;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::LinkSide;
using session::Session;
using session::SessionConfig;
using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using vipl::PendingConn;
using vipl::Provider;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;

// k=4 fat-tree: 16 hosts, 2 per edge switch, 4 per pod, 20 PDES domains
// (8 edge + 8 aggr + 4 core). Small enough to run the matrix quickly,
// large enough that every path tier (same-edge, same-pod, cross-pod) and
// every switch tier carries traffic.
constexpr std::uint32_t kNodes = 16;
constexpr std::uint32_t kFatTreeK = 4;
constexpr sim::Duration kTimeout = sim::kSecond * 10;
constexpr std::uint64_t kDisc = 9;

std::uint32_t hwShards() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 2 : n;
}

// --- small VIPL helpers (same idiom as test_chaos) ---------------------

struct Buf {
  mem::VirtAddr va = 0;
  mem::MemHandle handle = 0;
};

Buf makeBuf(Provider& nic, mem::PtagId ptag, std::uint64_t len) {
  Buf b;
  b.va = nic.memory().alloc(len, mem::kPageSize);
  vipl::VipMemAttributes ma;
  ma.ptag = ptag;
  EXPECT_EQ(vipl::VipRegisterMem(nic, b.va, len, ma, b.handle),
            VipResult::VIP_SUCCESS);
  return b;
}

void fillSeeded(Provider& nic, mem::VirtAddr va, std::size_t len,
                std::uint8_t seed) {
  std::vector<std::byte> data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = std::byte(static_cast<std::uint8_t>(seed ^ (i * 31)));
  }
  nic.memory().write(va, data);
}

bool checkSeeded(Provider& nic, mem::VirtAddr va, std::size_t len,
                 std::uint8_t seed) {
  std::vector<std::byte> data(len);
  nic.memory().read(va, data);
  for (std::size_t i = 0; i < len; ++i) {
    if (data[i] != std::byte(static_cast<std::uint8_t>(seed ^ (i * 31)))) {
      return false;
    }
  }
  return true;
}

Vi* makeVi(Provider& nic, mem::PtagId ptag, nic::Reliability rel) {
  vipl::VipViAttributes va;
  va.ptag = ptag;
  va.reliabilityLevel = rel;
  Vi* vi = nullptr;
  EXPECT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
            VipResult::VIP_SUCCESS);
  return vi;
}

std::vector<std::byte> pattern(std::size_t len, std::uint64_t seed) {
  std::vector<std::byte> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = std::byte(static_cast<std::uint8_t>(seed * 7 + i * 13));
  }
  return out;
}

// --- workloads ---------------------------------------------------------

using Programs = std::vector<std::function<void(NodeEnv&)>>;

Programs idlePrograms() {
  return Programs(kNodes, [](NodeEnv&) {});
}

std::function<void(NodeEnv&)> pingPongRequester(fabric::NodeId peer,
                                                std::uint64_t disc,
                                                std::uint64_t seed,
                                                int rounds,
                                                std::size_t bytes) {
  return [=](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf tx = makeBuf(nic, ptag, bytes);
    Buf rx = makeBuf(nic, ptag, rounds * bytes);
    fillSeeded(nic, tx.va, bytes, static_cast<std::uint8_t>(seed));
    Vi* vi = makeVi(nic, ptag, nic::Reliability::ReliableDelivery);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < rounds; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(rx.va + i * bytes, rx.handle, bytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {peer, disc}, kTimeout),
              VipResult::VIP_SUCCESS);
    for (int i = 0; i < rounds; ++i) {
      VipDescriptor d = VipDescriptor::send(tx.va, tx.handle, bytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, recvs[i].get()) << "pong out of order at round " << i;
    }
  };
}

std::function<void(NodeEnv&)> pingPongResponder(fabric::NodeId self,
                                                std::uint64_t disc,
                                                std::uint64_t seed,
                                                int rounds,
                                                std::size_t bytes) {
  return [=](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf tx = makeBuf(nic, ptag, bytes);
    Buf rx = makeBuf(nic, ptag, rounds * bytes);
    fillSeeded(nic, tx.va, bytes, static_cast<std::uint8_t>(seed + 1));
    Vi* vi = makeVi(nic, ptag, nic::Reliability::ReliableDelivery);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < rounds; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(rx.va + i * bytes, rx.handle, bytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {self, disc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    for (int i = 0; i < rounds; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, recvs[i].get()) << "ping out of order at round " << i;
      VipDescriptor d = VipDescriptor::send(tx.va, tx.handle, bytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    }
  };
}

/// Cross-pod request/response (node 0 in pod 0 <-> node 13 in pod 3):
/// every frame crosses edge, aggr, and core domains, and 2% frame loss
/// keeps the RTO retransmission timers hot.
void pingPongWorkload(Cluster& cluster, std::uint64_t seed) {
  Programs programs = idlePrograms();
  programs[0] = pingPongRequester(13, kDisc, seed, 40, 1024);
  programs[13] = pingPongResponder(13, kDisc, seed, 40, 1024);
  cluster.run(std::move(programs));
}

/// Every other node drives RPCs into one server CQ — 15 concurrent
/// connect dialogs plus request fan-in from every edge domain at once.
/// Clients stagger their start (same idiom as bench_ext_multiclient):
/// unstaggered, every cross-pod client's connect lands on the server
/// edge at the same timestamp, and the serial engine orders such
/// same-time arrivals from different source domains by global insertion
/// order where the hosted merge orders them by domain index — both valid
/// schedules, but not comparable. The stagger keeps the workload
/// tie-free so serial-vs-sharded identity is well-defined.
void rpcWorkload(Cluster& cluster, std::uint64_t seed) {
  constexpr int kCalls = 5;
  Programs programs = idlePrograms();
  programs[0] = [](NodeEnv& env) {
    upper::rpc::RpcServer srv(env);
    srv.registerMethod(1, [](std::span<const std::byte> in) {
      std::vector<std::byte> out(in.begin(), in.end());
      for (auto& b : out) b ^= std::byte{0x5a};
      return out;
    });
    srv.acceptClients(kNodes - 1);
    srv.serve();
    EXPECT_EQ(srv.requestsServed(),
              static_cast<std::uint64_t>(kCalls * (kNodes - 1)));
  };
  for (std::uint32_t n = 1; n < kNodes; ++n) {
    programs[n] = [n, seed](NodeEnv& env) {
      env.self.advance(sim::usec(23) * n, sim::CpuUse::Idle);
      upper::rpc::RpcClient cli(env, 0);
      for (int i = 0; i < kCalls; ++i) {
        const auto args = pattern(24, seed + n * 100 + i);
        const auto reply = cli.call(1, args);
        auto expect = args;
        for (auto& b : expect) b ^= std::byte{0x5a};
        EXPECT_EQ(reply, expect) << "node " << n << " call " << i;
      }
      cli.shutdown();
    };
  }
  cluster.run(std::move(programs));
}

std::function<void(NodeEnv&)> streamSender(fabric::NodeId peer,
                                           std::uint64_t disc,
                                           nic::Reliability rel,
                                           int messages, std::size_t bytes) {
  return [=](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, messages * bytes);
    for (int i = 0; i < messages; ++i) {
      fillSeeded(nic, buf.va + i * bytes, bytes,
                 static_cast<std::uint8_t>(i));
    }
    Vi* vi = makeVi(nic, ptag, rel);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {peer, disc}, kTimeout),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> sends;
    for (int i = 0; i < messages; ++i) {
      sends.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::send(buf.va + i * bytes, buf.handle, bytes)));
      ASSERT_EQ(vipl::VipPostSend(nic, vi, sends[i].get()),
                VipResult::VIP_SUCCESS);
    }
    for (int i = 0; i < messages; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, sends[i].get()) << "send completions out of order";
    }
  };
}

std::function<void(NodeEnv&)> streamReceiver(fabric::NodeId self,
                                             std::uint64_t disc,
                                             nic::Reliability rel,
                                             int messages,
                                             std::size_t bytes) {
  return [=](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, messages * bytes);
    Vi* vi = makeVi(nic, ptag, rel);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < messages; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(buf.va + i * bytes, buf.handle, bytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {self, disc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    for (int i = 0; i < messages; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(done, recvs[i].get()) << "recv completions out of order";
      EXPECT_TRUE(checkSeeded(nic, buf.va + i * bytes, bytes,
                              static_cast<std::uint8_t>(i)))
          << "payload corrupted for message " << i;
    }
  };
}

/// Three concurrent multi-fragment streams (6000 B > MTU, so every
/// message exercises fragmentation/reassembly) crossing pods in both
/// directions, with both reliability levels in flight at once.
void streamingWorkload(Cluster& cluster, std::uint64_t seed) {
  (void)seed;
  constexpr int kMessages = 25;
  constexpr std::size_t kBytes = 6000;
  Programs programs = idlePrograms();
  struct Pair {
    fabric::NodeId src, dst;
    nic::Reliability rel;
  };
  const Pair pairs[] = {
      {1, 14, nic::Reliability::ReliableDelivery},
      {5, 10, nic::Reliability::ReliableReception},
      {8, 3, nic::Reliability::ReliableDelivery},
  };
  for (std::size_t p = 0; p < std::size(pairs); ++p) {
    const std::uint64_t disc = kDisc + 1 + p;
    programs[pairs[p].src] =
        streamSender(pairs[p].dst, disc, pairs[p].rel, kMessages, kBytes);
    programs[pairs[p].dst] = streamReceiver(pairs[p].dst, disc,
                                            pairs[p].rel, kMessages, kBytes);
  }
  cluster.run(std::move(programs));
}

SessionConfig sessionCfg(std::uint32_t sid, fabric::NodeId remote,
                         bool initiator, std::uint64_t seed) {
  SessionConfig c;
  c.sid = sid;
  c.remoteNode = remote;
  c.discriminator = 0x5345'5332;  // "SES2"
  c.initiator = initiator;
  c.policy.seed = seed;
  return c;
}

/// Host partition long enough to exhaust the RTO retry budget: the
/// session must notice the break inside its edge domain, tear down, and
/// reconnect through the full cross-domain fabric — the reliability-
/// timer restructure's acid test.
FaultPlan flapPlan(std::uint64_t seed, fabric::NodeId node) {
  FaultPlan plan;
  plan.seed = seed;
  FaultAction part;
  part.kind = FaultKind::Partition;
  part.node = node;
  part.side = LinkSide::Both;
  part.start = sim::msec(60);
  part.duration = sim::msec(400);
  part.rate = 1.0;
  plan.actions.push_back(part);
  return plan;
}

/// Cross-pod session (2 -> 13) producing through a 400ms partition of
/// the receiver's host links; reconnect + exactly-once replay must be
/// identical in every engine mode.
void sessionFlapWorkload(Cluster& cluster, std::uint64_t seed) {
  constexpr int kMsgs = 40;
  Programs programs = idlePrograms();
  programs[2] = [seed](NodeEnv& env) {
    Session s(env.nic, sessionCfg(1, 13, /*initiator=*/true, seed));
    ASSERT_TRUE(s.establish());
    for (int i = 0; i < kMsgs; ++i) {
      ASSERT_TRUE(s.send(pattern(300, i)));
      env.self.advance(sim::msec(8), sim::CpuUse::Idle);
      s.progress();
      ASSERT_FALSE(s.down());
    }
    ASSERT_TRUE(s.flush(sim::kSecond * 5));
    EXPECT_GE(s.stats().reconnects, 1u);
    EXPECT_GT(s.stats().replayed, 0u);
  };
  programs[13] = [seed](NodeEnv& env) {
    Session s(env.nic, sessionCfg(1, 2, /*initiator=*/false, seed));
    ASSERT_TRUE(s.establish());
    for (int i = 0; i < kMsgs; ++i) {
      std::vector<std::byte> msg;
      ASSERT_TRUE(s.recv(msg, sim::kSecond * 5)) << "message " << i;
      EXPECT_EQ(msg, pattern(300, i)) << "message " << i;
    }
    EXPECT_EQ(s.stats().delivered, static_cast<std::uint64_t>(kMsgs));
  };
  cluster.run(std::move(programs));
}

// --- the equivalence harness -------------------------------------------

using WorkloadFn = void (*)(Cluster&, std::uint64_t);

struct WorkloadCase {
  const char* name;
  WorkloadFn fn;
  double loss;      // Bernoulli frame loss on every link
  bool flap;        // arm flapPlan(seed, 13)
};

/// Everything a run exposes, rendered to comparable form. Every field
/// must be byte-identical between the serial engine and the hosted
/// ShardedEngine at any shard count.
struct StackOutcome {
  sim::SimTime endTime = 0;
  std::vector<std::uint64_t> nodeDigests;
  std::string nicStats;
  std::string metrics;
  std::string spans;
  std::string samplerCsv;
  std::uint64_t windows = 0;  // sharded runs only; 0 when serial
};

std::string renderNicStats(Cluster& cluster) {
  std::string out;
  for (std::uint32_t n = 0; n < cluster.nodeCount(); ++n) {
    const nic::NicStats s = cluster.node(n).device().stats();
    out += "node" + std::to_string(n) + " sp=" +
           std::to_string(s.sendsPosted) + " rp=" +
           std::to_string(s.recvsPosted) + " ftx=" +
           std::to_string(s.fragsTx) + " frx=" + std::to_string(s.fragsRx) +
           " btx=" + std::to_string(s.bytesTx) + " brx=" +
           std::to_string(s.bytesRx) + " atx=" + std::to_string(s.acksTx) +
           " arx=" + std::to_string(s.acksRx) + " rtx=" +
           std::to_string(s.retransmits) + " ooo=" +
           std::to_string(s.rxOutOfOrderDropped) + " perr=" +
           std::to_string(s.protocolErrors) + "\n";
  }
  return out;
}

/// One full run of `wc` on a 16-host k=4 fat-tree. `simShards` 0 = the
/// classic serial engine; >= 1 = hosted ShardedEngine with that many
/// worker threads (1 runs the identical window loop inline).
StackOutcome runStack(const WorkloadCase& wc, std::uint32_t simShards,
                      std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.nodes = kNodes;
  cfg.seed = seed;
  cfg.lossRate = wc.loss;
  cfg.fatTreeK = kFatTreeK;
  cfg.simShards = simShards;
  Cluster cluster(cfg);

  // Per-node tracers attached straight to each NIC device: each stream
  // is totally ordered by that node's own schedule, so its digest is the
  // serial-vs-sharded equivalence witness.
  std::vector<std::unique_ptr<sim::Tracer>> tracers;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    auto t = std::make_unique<sim::Tracer>(64);
    t->enableAll();
    cluster.node(n).device().setTracer(t.get());
    tracers.push_back(std::move(t));
  }

  obs::MetricsRegistry metrics;
  cluster.setMetricsRegistry(&metrics);
  obs::SpanProfiler spans;
  cluster.setSpanProfiler(&spans);
  obs::TimeSeriesSampler sampler;
  cluster.setSampler(&sampler, sim::msec(1));

  std::unique_ptr<FaultInjector> injector;
  if (wc.flap) {
    injector = std::make_unique<FaultInjector>(flapPlan(seed, 13));
    injector->arm(cluster);
  }

  wc.fn(cluster, seed);

  StackOutcome out;
  out.endTime = cluster.now();
  for (auto& t : tracers) out.nodeDigests.push_back(t->digest());
  out.nicStats = renderNicStats(cluster);
  out.metrics = metrics.renderText();
  out.spans = spans.renderAttribution();
  out.samplerCsv = sampler.renderCsv();
  if (cluster.sharded()) out.windows = cluster.shardedEngine().windowsExecuted();
  return out;
}

void expectSameOutcome(const StackOutcome& serial, const StackOutcome& got,
                       const std::string& label) {
  EXPECT_EQ(serial.endTime, got.endTime) << label;
  ASSERT_EQ(serial.nodeDigests.size(), got.nodeDigests.size()) << label;
  for (std::size_t n = 0; n < serial.nodeDigests.size(); ++n) {
    EXPECT_EQ(serial.nodeDigests[n], got.nodeDigests[n])
        << label << ": node " << n << " trace digest diverged";
  }
  EXPECT_EQ(serial.nicStats, got.nicStats) << label;
  EXPECT_EQ(serial.metrics, got.metrics) << label;
  EXPECT_EQ(serial.spans, got.spans) << label;
  EXPECT_EQ(serial.samplerCsv, got.samplerCsv) << label;
}

class PdesStackEquivalence : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(PdesStackEquivalence, SerialAndShardedAreByteIdentical) {
  const WorkloadCase wc = GetParam();
  const std::uint64_t seed = 1234;

  const StackOutcome serial = runStack(wc, /*simShards=*/0, seed);

  const std::uint32_t shardCounts[] = {1, 2, 7, hwShards()};
  std::uint64_t windows = 0;
  for (std::uint32_t shards : shardCounts) {
    const StackOutcome sharded = runStack(wc, shards, seed);
    expectSameOutcome(serial, sharded,
                      "shards=" + std::to_string(shards));
    // The window schedule is a function of the domain partition and
    // lookahead alone, so every sharded run executes the same windows.
    if (windows == 0) windows = sharded.windows;
    EXPECT_EQ(sharded.windows, windows)
        << "window count varies with worker shards=" << shards;
    EXPECT_GT(sharded.windows, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PdesStackEquivalence,
    ::testing::Values(
        WorkloadCase{"pingPongLossy", pingPongWorkload, 0.02, false},
        WorkloadCase{"multiclientRpc", rpcWorkload, 0.0, false},
        WorkloadCase{"streamingPairs", streamingWorkload, 0.0, false},
        WorkloadCase{"sessionFlap", sessionFlapWorkload, 0.0, true}),
    [](const auto& pi) { return std::string(pi.param.name); });

// --- the Cluster-level shadow tracer -----------------------------------

// The global replayed stream (per-node shadow tracers merged in
// (time, node, record) order after the run) is a function of the
// simulation alone: its digest must not move with the worker shard
// count. Serial is excluded on purpose — a serial global tracer
// interleaves same-timestamp records from different nodes in execution
// order, which is a different (equally valid) total order.
TEST(PdesStackShadowTracer, GlobalReplayDigestInvariantAcrossShardCounts) {
  const WorkloadCase wc{"pingPongLossy", pingPongWorkload, 0.02, false};
  const std::uint64_t seed = 77;

  std::uint64_t expected = 0;
  bool first = true;
  for (std::uint32_t shards : {1u, 2u, 7u}) {
    ClusterConfig cfg;
    cfg.profile = nic::profileByName("clan");
    cfg.nodes = kNodes;
    cfg.seed = seed;
    cfg.lossRate = wc.loss;
    cfg.fatTreeK = kFatTreeK;
    cfg.simShards = shards;
    Cluster cluster(cfg);
    sim::Tracer tracer(4096);
    tracer.enableAll();
    cluster.setTracer(&tracer);
    wc.fn(cluster, seed);
    if (first) {
      expected = tracer.digest();
      first = false;
      EXPECT_NE(expected, sim::Tracer::kDigestSeed) << "empty trace stream";
    } else {
      EXPECT_EQ(tracer.digest(), expected)
          << "global replay digest moved at shards=" << shards;
    }
  }
}

// --- mode accessors and domain placement --------------------------------

TEST(PdesStackCluster, ShardedAccessorsAndDomainPlacement) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.nodes = kNodes;
  cfg.fatTreeK = kFatTreeK;
  cfg.simShards = 2;
  Cluster cluster(cfg);

  EXPECT_TRUE(cluster.sharded());
  EXPECT_THROW(cluster.engine(), sim::SimError);
  // k=4: 8 edge + 8 aggr + 4 core switches = 20 domains.
  EXPECT_EQ(cluster.shardedEngine().domainCount(), 20u);
  // Hosts land on their edge switch's domain: 2 hosts per edge at k=4.
  EXPECT_EQ(&cluster.nodeEngine(0), &cluster.nodeEngine(1));
  EXPECT_NE(&cluster.nodeEngine(0), &cluster.nodeEngine(2));
  EXPECT_EQ(&cluster.nodeEngine(14), &cluster.nodeEngine(15));
}

TEST(PdesStackCluster, SerialAccessors) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.nodes = 4;
  cfg.fatTreeK = kFatTreeK;
  Cluster cluster(cfg);

  EXPECT_FALSE(cluster.sharded());
  EXPECT_NO_THROW(cluster.engine());
  EXPECT_THROW(cluster.shardedEngine(), sim::SimError);
  EXPECT_EQ(&cluster.nodeEngine(0), &cluster.engine());
  EXPECT_EQ(cluster.now(), cluster.engine().now());
}

// The hop lookahead the Cluster derives is the floor of any cross-domain
// delivery: header serialization + propagation of the fabric link. A
// zero or negative lookahead would serialize the PDES windows entirely.
TEST(PdesStackCluster, DerivedLookaheadIsPositive) {
  const nic::NicProfile prof = nic::profileByName("clan");
  fabric::NetworkParams np;
  np.nodes = kNodes;
  np.fatTreeK = kFatTreeK;
  np.link.bandwidthMBps = prof.linkMBps;
  np.link.propagation = prof.linkPropagation;
  np.link.headerBytes = prof.linkHeaderBytes;
  np.trunk = np.link;
  const fabric::TopologySpec spec = fabric::Network::specFor(np);
  EXPECT_GT(fabric::hopLookahead(spec), 0);
  EXPECT_EQ(fabric::stackDomainCount(spec), 20u);
}

// Regression for the cross-domain audit: the per-switch forwarding
// counters are mutated from frame events in whatever domain the switch
// lives in. If any of those mutations ran in a foreign domain's window
// (instead of through the mailbox merge), counts would race — and under
// the lockstep schedule they would drift with the shard count. Streaming
// pushes multi-fragment traffic through every tier, so every counter is
// nonzero and engine-mode-sensitive if the conversion regressed.
TEST(PdesStackCounters, FabricCountersAreEngineModeInvariant) {
  struct FabricCounts {
    std::uint64_t dropped, corrupted, forwarded, viaRoot, bufDrops;
    std::uint32_t maxDepth;
    bool operator==(const FabricCounts&) const = default;
  };
  auto runOnce = [](std::uint32_t simShards) {
    ClusterConfig cfg;
    cfg.profile = nic::profileByName("clan");
    cfg.nodes = kNodes;
    cfg.fatTreeK = kFatTreeK;
    cfg.lossRate = 0.02;
    cfg.seed = 77;
    cfg.simShards = simShards;
    Cluster cluster(cfg);
    streamingWorkload(cluster, 77);
    fabric::Network& net = cluster.network();
    return FabricCounts{net.framesDropped(),      net.framesCorrupted(),
                        net.packetsForwarded(),   net.packetsViaRoot(),
                        net.switchBufferDrops(),  net.maxSwitchQueueDepth()};
  };
  const FabricCounts serial = runOnce(0);
  EXPECT_GT(serial.forwarded, 0u);
  EXPECT_GT(serial.dropped, 0u);  // 2% loss keeps the drop path hot
  for (std::uint32_t shards : {1u, 2u, 7u}) {
    const FabricCounts sharded = runOnce(shards);
    EXPECT_TRUE(serial == sharded) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace vibe
