// Tests for the observability layer: histogram bucketing and quantiles,
// the metrics registry, span-profiler bookkeeping, Chrome trace-event
// export, and the end-to-end stage-attribution invariant on a live
// ping-pong run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "nic/profiles.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "vibe/datatransfer.hpp"

namespace vibe {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::SpanProfiler;
using obs::Stage;

// --- Histogram -----------------------------------------------------------

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramTest, SingleSampleQuantilesAreExact) {
  Histogram h;
  h.add(1234567);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234567u);
  EXPECT_EQ(h.max(), 1234567u);
  // Quantiles clamp to [min, max], so a lone sample is reported exactly
  // even though its bucket spans a range.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1234567.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1234567.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1234567.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1234567.0);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.add(-42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, OverflowBucketCountsAndClamps) {
  Histogram h;
  const std::int64_t huge =
      static_cast<std::int64_t>(Histogram::kMaxValue) + 7;
  h.add(5);
  h.add(huge);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflowCount(), 1u);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(huge));
  // The overflow sample still participates in sum/mean and quantiles
  // clamp to the recorded max rather than the bucket's upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(huge));
  // Exactly kMaxValue is representable and not an overflow.
  Histogram edge;
  edge.add(static_cast<std::int64_t>(Histogram::kMaxValue));
  EXPECT_EQ(edge.overflowCount(), 0u);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(i * i);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), static_cast<double>(h.min()));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(h.max()));
}

TEST(HistogramTest, BucketIndexAndBoundsAreInverse) {
  // Every probed value must land inside its bucket's bounds, and above
  // the unit-bucket region the bucket width must respect the 1/2^kSubBits
  // relative-error guarantee (width * 2^kSubBits <= lo).
  const std::uint64_t probes[] = {0,       1,    7,    8,       9,
                                  15,      16,   17,   255,     256,
                                  1000,    4095, 4096, 1000000,
                                  (1ull << 40) + 12345, Histogram::kMaxValue};
  for (const std::uint64_t v : probes) {
    const std::size_t idx = Histogram::bucketIndex(v);
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    Histogram::bucketBounds(idx, lo, hi);
    EXPECT_LE(lo, v) << "value " << v;
    EXPECT_GE(hi, v) << "value " << v;
    if (v >= (1ull << Histogram::kSubBits)) {
      EXPECT_LE((hi - lo + 1) << Histogram::kSubBits, lo) << "value " << v;
    } else {
      EXPECT_EQ(lo, hi) << "unit bucket for " << v;
    }
  }
  // Adjacent buckets tile the value axis with no gaps or overlap.
  std::uint64_t prevHi = 0;
  for (std::size_t idx = 0; idx < 200; ++idx) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    Histogram::bucketBounds(idx, lo, hi);
    if (idx > 0) {
      EXPECT_EQ(lo, prevHi + 1) << "bucket " << idx;
    }
    prevHi = hi;
  }
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.add(10);
  a.add(20);
  b.add(5);
  b.add(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0 + 20.0 + 5.0 + 1000000.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
}

// --- MetricsRegistry -----------------------------------------------------

TEST(MetricsRegistryTest, CreatesOnDemandAndRendersSorted) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.counter("node1/nic.frags_tx").add(3);
  m.counter("node0/nic.frags_tx").add(7);
  m.gauge("bench/bandwidth_mbps").set(812.5);
  m.histogram("node0/latency_ns").add(1500);
  EXPECT_FALSE(m.empty());
  // Same name resolves to the same instance.
  m.counter("node0/nic.frags_tx").add(1);
  EXPECT_EQ(m.counter("node0/nic.frags_tx").value(), 8u);
  const std::string text = m.renderText();
  const auto pos0 = text.find("node0/nic.frags_tx");
  const auto pos1 = text.find("node1/nic.frags_tx");
  ASSERT_NE(pos0, std::string::npos);
  ASSERT_NE(pos1, std::string::npos);
  EXPECT_LT(pos0, pos1) << "renderText must be name-ordered";
  EXPECT_NE(text.find("bench/bandwidth_mbps"), std::string::npos);
  EXPECT_NE(text.find("node0/latency_ns"), std::string::npos);
  m.clear();
  EXPECT_TRUE(m.empty());
}

TEST(MetricsRegistryTest, ScopedJoinsWithSlash) {
  EXPECT_EQ(obs::scoped("node0", "nic.frags_tx"), "node0/nic.frags_tx");
  EXPECT_EQ(obs::scoped("bench.pingpong", "latency_ns"),
            "bench.pingpong/latency_ns");
}

// --- SpanProfiler --------------------------------------------------------

TEST(SpanProfilerTest, MalformedSpanCountsAsMismatch) {
  SpanProfiler p;
  p.emit(Stage::Wire, 0, 0, /*begin=*/100, /*end=*/50, 64);
  EXPECT_EQ(p.mismatchCount(), 1u);
  EXPECT_EQ(p.totalSpans(), 0u);
  EXPECT_EQ(p.stage(Stage::Wire).count(), 0u);
  // Zero-length spans are legal (instantaneous stage).
  p.emit(Stage::Wire, 0, 0, 100, 100, 64);
  EXPECT_EQ(p.totalSpans(), 1u);
}

TEST(SpanProfilerTest, BeginEndNestsPerKey) {
  SpanProfiler p;
  p.beginSpan(Stage::NicTx, 0, 1, 10);  // outer
  p.beginSpan(Stage::NicTx, 0, 1, 20);  // inner
  EXPECT_EQ(p.openSpanCount(), 2u);
  EXPECT_TRUE(p.endSpan(Stage::NicTx, 0, 1, 30));  // closes inner: 10 ns
  EXPECT_TRUE(p.endSpan(Stage::NicTx, 0, 1, 50));  // closes outer: 40 ns
  EXPECT_EQ(p.openSpanCount(), 0u);
  const Histogram& h = p.stage(Stage::NicTx);
  ASSERT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  // Distinct keys do not close each other's spans.
  p.beginSpan(Stage::Rx, 2, 0, 100);
  EXPECT_FALSE(p.endSpan(Stage::Rx, 3, 0, 110));
  EXPECT_EQ(p.mismatchCount(), 1u);
  EXPECT_EQ(p.openSpanCount(), 1u);
}

TEST(SpanProfilerTest, EndWithoutBeginIsAMismatch) {
  SpanProfiler p;
  EXPECT_FALSE(p.endSpan(Stage::Post, 0, 0, 5));
  EXPECT_EQ(p.mismatchCount(), 1u);
  EXPECT_EQ(p.totalSpans(), 0u);
}

TEST(SpanProfilerTest, EventRetentionIsBoundedAndOptional) {
  SpanProfiler off;
  off.emit(Stage::Wire, 0, 0, 0, 10, 1);
  EXPECT_TRUE(off.events().empty()) << "keepEvents defaults to off";
  EXPECT_EQ(off.eventsDropped(), 0u);

  SpanProfiler p(/*maxEvents=*/4);
  p.setKeepEvents(true);
  for (int i = 0; i < 6; ++i) {
    p.emit(Stage::Wire, 0, 0, i * 10, i * 10 + 5, 64);
  }
  EXPECT_EQ(p.events().size(), 4u);
  EXPECT_EQ(p.eventsDropped(), 2u);
  // Aggregation is unaffected by the retention cap.
  EXPECT_EQ(p.totalSpans(), 6u);
  EXPECT_EQ(p.stage(Stage::Wire).count(), 6u);
}

TEST(SpanProfilerTest, ClearResetsEverything) {
  SpanProfiler p;
  p.setKeepEvents(true);
  p.emit(Stage::Post, 0, 0, 0, 10, 1);
  p.beginSpan(Stage::Rx, 0, 0, 5);
  p.endSpan(Stage::Wire, 0, 0, 7);  // mismatch
  p.clear();
  EXPECT_EQ(p.totalSpans(), 0u);
  EXPECT_EQ(p.mismatchCount(), 0u);
  EXPECT_EQ(p.openSpanCount(), 0u);
  EXPECT_TRUE(p.events().empty());
  EXPECT_EQ(p.stage(Stage::Post).count(), 0u);
  EXPECT_DOUBLE_EQ(p.stageMeanSumUsec(), 0.0);
}

TEST(SpanProfilerTest, StageToStringIsExhaustive) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Stage::kCount); ++i) {
    const char* name = obs::toString(static_cast<Stage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "stage " << i;
  }
  EXPECT_STREQ(obs::toString(Stage::kCount), "?");
  EXPECT_TRUE(obs::isPipelineStage(Stage::Wire));
  EXPECT_FALSE(obs::isPipelineStage(Stage::EndToEnd));
}

// --- Trace JSON export ---------------------------------------------------

namespace {
std::string readFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Counts complete top-level JSON objects inside the traceEvents array by
/// brace balance — a hand-rolled check that the file is structurally sound
/// without a JSON library.
std::size_t countTraceEvents(const std::string& json) {
  const auto start = json.find('[');
  const auto end = json.rfind(']');
  if (start == std::string::npos || end == std::string::npos) return 0;
  std::size_t events = 0;
  int depth = 0;
  bool inString = false;
  for (std::size_t i = start + 1; i < end; ++i) {
    const char c = json[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') inString = true;
    if (c == '{' && depth++ == 0) ++events;
    if (c == '}') --depth;
  }
  return depth == 0 ? events : 0;
}
}  // namespace

TEST(TraceExportTest, RoundTripsSpansAndInstants) {
  const std::string path = ::testing::TempDir() + "vibe_trace_test.json";
  SpanProfiler p;
  p.setKeepEvents(true);
  p.emit(Stage::NicTx, 0, 3, 1000, 2500, 64);
  p.emit(Stage::Wire, 0, 3, 2500, 4000, 84);
  {
    obs::TraceJsonExporter exp(path);
    exp.exportSpans(p);
    sim::TraceRecord rec;
    rec.time = 4200;
    rec.category = sim::TraceCategory::Completion;
    rec.component = 1;
    rec.message = "cq write \"quoted\"\n";
    exp.instant(rec);
    EXPECT_EQ(exp.eventCount(), 3u);
    EXPECT_TRUE(exp.finish());
    EXPECT_TRUE(exp.finish()) << "finish must be idempotent";
  }
  const std::string json = readFile(path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(countTraceEvents(json), 3u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"nic_tx\""), std::string::npos);
  // 1000 ns begin renders as 1.000 us; duration 1500 ns as 1.500 us.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  // The quote and newline in the instant's message must be escaped.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExportTest, DestructorFlushesBufferedEvents) {
  const std::string path = ::testing::TempDir() + "vibe_trace_dtor.json";
  {
    obs::TraceJsonExporter exp(path);
    SpanProfiler p;
    p.setKeepEvents(true);
    p.emit(Stage::Post, 1, 0, 0, 50, 4);
    exp.exportSpans(p);
  }  // destructor calls finish()
  EXPECT_EQ(countTraceEvents(readFile(path)), 1u);
  std::remove(path.c_str());
}

// --- Live stage attribution ----------------------------------------------

TEST(ObsIntegration, StageSumMatchesEndToEndOnPingPong) {
  SpanProfiler spans;
  suite::ClusterConfig cc{nic::clanProfile()};
  cc.spans = &spans;
  suite::TransferConfig cfg;
  cfg.msgBytes = 64;
  cfg.iterations = 100;
  cfg.warmup = 4;
  const auto r = suite::runPingPong(cc, cfg);
  ASSERT_GT(r.latencyUsec, 0.0);

  // Every message (both directions, warmup included) got an envelope.
  EXPECT_EQ(spans.messageCount(),
            static_cast<std::size_t>(cfg.iterations + cfg.warmup) * 2);
  EXPECT_EQ(spans.mismatchCount(), 0u);
  EXPECT_EQ(spans.openSpanCount(), 0u);

  // The per-message stage sum must account for the full post-to-completion
  // envelope: the stages tile the journey, so the sum matches the measured
  // EndToEnd mean closely (small deviations only from pipelining overlap).
  const double e2eUs = spans.stage(Stage::EndToEnd).mean() / 1e3;
  const double sumUs = spans.stageMeanSumUsec();
  ASSERT_GT(e2eUs, 0.0);
  EXPECT_NEAR(sumUs, e2eUs, 0.1 * e2eUs)
      << spans.renderAttribution();
  // ...and the envelope itself sits at or below the measured one-way
  // latency (which adds the receiver's reap overhead).
  EXPECT_LE(e2eUs, r.latencyUsec * 1.05) << spans.renderAttribution();
  EXPECT_GE(r.latencyUsec, e2eUs * 0.75) << spans.renderAttribution();

  const std::string table = spans.renderAttribution();
  EXPECT_NE(table.find("nic_tx"), std::string::npos);
  EXPECT_NE(table.find("wire"), std::string::npos);
  EXPECT_NE(table.find("end-to-end"), std::string::npos);
}

TEST(ObsIntegration, AttachedProfilerDoesNotPerturbTiming) {
  suite::TransferConfig cfg;
  cfg.msgBytes = 1024;
  cfg.iterations = 50;
  const auto plain =
      suite::runPingPong(suite::ClusterConfig{nic::bviaProfile()}, cfg);
  SpanProfiler spans;
  suite::ClusterConfig cc{nic::bviaProfile()};
  cc.spans = &spans;
  const auto observed = suite::runPingPong(cc, cfg);
  // Observability is measurement, not load: identical virtual-time result.
  EXPECT_DOUBLE_EQ(observed.latencyUsec, plain.latencyUsec);
  EXPECT_DOUBLE_EQ(observed.latencyP99Usec, plain.latencyP99Usec);
  EXPECT_GT(spans.totalSpans(), 0u);
}

}  // namespace
}  // namespace vibe
