// Tests for the observability layer: histogram bucketing and quantiles,
// the metrics registry, span-profiler bookkeeping, Chrome trace-event
// export, and the end-to-end stage-attribution invariant on a live
// ping-pong run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "fault/invariants.hpp"
#include "nic/profiles.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_export.hpp"
#include "simcore/engine.hpp"
#include "test_env.hpp"
#include "vibe/datatransfer.hpp"

namespace vibe {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::SpanProfiler;
using obs::Stage;

// --- Histogram -----------------------------------------------------------

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramTest, SingleSampleQuantilesAreExact) {
  Histogram h;
  h.add(1234567);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234567u);
  EXPECT_EQ(h.max(), 1234567u);
  // Quantiles clamp to [min, max], so a lone sample is reported exactly
  // even though its bucket spans a range.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1234567.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1234567.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1234567.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1234567.0);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.add(-42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, OverflowBucketCountsAndClamps) {
  Histogram h;
  const std::int64_t huge =
      static_cast<std::int64_t>(Histogram::kMaxValue) + 7;
  h.add(5);
  h.add(huge);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflowCount(), 1u);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(huge));
  // The overflow sample still participates in sum/mean and quantiles
  // clamp to the recorded max rather than the bucket's upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(huge));
  // Exactly kMaxValue is representable and not an overflow.
  Histogram edge;
  edge.add(static_cast<std::int64_t>(Histogram::kMaxValue));
  EXPECT_EQ(edge.overflowCount(), 0u);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(i * i);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), static_cast<double>(h.min()));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(h.max()));
}

TEST(HistogramTest, BucketIndexAndBoundsAreInverse) {
  // Every probed value must land inside its bucket's bounds, and above
  // the unit-bucket region the bucket width must respect the 1/2^kSubBits
  // relative-error guarantee (width * 2^kSubBits <= lo).
  const std::uint64_t probes[] = {0,       1,    7,    8,       9,
                                  15,      16,   17,   255,     256,
                                  1000,    4095, 4096, 1000000,
                                  (1ull << 40) + 12345, Histogram::kMaxValue};
  for (const std::uint64_t v : probes) {
    const std::size_t idx = Histogram::bucketIndex(v);
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    Histogram::bucketBounds(idx, lo, hi);
    EXPECT_LE(lo, v) << "value " << v;
    EXPECT_GE(hi, v) << "value " << v;
    if (v >= (1ull << Histogram::kSubBits)) {
      EXPECT_LE((hi - lo + 1) << Histogram::kSubBits, lo) << "value " << v;
    } else {
      EXPECT_EQ(lo, hi) << "unit bucket for " << v;
    }
  }
  // Adjacent buckets tile the value axis with no gaps or overlap.
  std::uint64_t prevHi = 0;
  for (std::size_t idx = 0; idx < 200; ++idx) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    Histogram::bucketBounds(idx, lo, hi);
    if (idx > 0) {
      EXPECT_EQ(lo, prevHi + 1) << "bucket " << idx;
    }
    prevHi = hi;
  }
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.add(10);
  a.add(20);
  b.add(5);
  b.add(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0 + 20.0 + 5.0 + 1000000.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
}

// --- MetricsRegistry -----------------------------------------------------

TEST(MetricsRegistryTest, CreatesOnDemandAndRendersSorted) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.counter("node1/nic.frags_tx").add(3);
  m.counter("node0/nic.frags_tx").add(7);
  m.gauge("bench/bandwidth_mbps").set(812.5);
  m.histogram("node0/latency_ns").add(1500);
  EXPECT_FALSE(m.empty());
  // Same name resolves to the same instance.
  m.counter("node0/nic.frags_tx").add(1);
  EXPECT_EQ(m.counter("node0/nic.frags_tx").value(), 8u);
  const std::string text = m.renderText();
  const auto pos0 = text.find("node0/nic.frags_tx");
  const auto pos1 = text.find("node1/nic.frags_tx");
  ASSERT_NE(pos0, std::string::npos);
  ASSERT_NE(pos1, std::string::npos);
  EXPECT_LT(pos0, pos1) << "renderText must be name-ordered";
  EXPECT_NE(text.find("bench/bandwidth_mbps"), std::string::npos);
  EXPECT_NE(text.find("node0/latency_ns"), std::string::npos);
  m.clear();
  EXPECT_TRUE(m.empty());
}

TEST(MetricsRegistryTest, ScopedJoinsWithSlash) {
  EXPECT_EQ(obs::scoped("node0", "nic.frags_tx"), "node0/nic.frags_tx");
  EXPECT_EQ(obs::scoped("bench.pingpong", "latency_ns"),
            "bench.pingpong/latency_ns");
}

// --- SpanProfiler --------------------------------------------------------

TEST(SpanProfilerTest, MalformedSpanCountsAsMismatch) {
  SpanProfiler p;
  p.emit(Stage::Wire, 0, 0, /*begin=*/100, /*end=*/50, 64);
  EXPECT_EQ(p.mismatchCount(), 1u);
  EXPECT_EQ(p.totalSpans(), 0u);
  EXPECT_EQ(p.stage(Stage::Wire).count(), 0u);
  // Zero-length spans are legal (instantaneous stage).
  p.emit(Stage::Wire, 0, 0, 100, 100, 64);
  EXPECT_EQ(p.totalSpans(), 1u);
}

TEST(SpanProfilerTest, BeginEndNestsPerKey) {
  SpanProfiler p;
  p.beginSpan(Stage::NicTx, 0, 1, 10);  // outer
  p.beginSpan(Stage::NicTx, 0, 1, 20);  // inner
  EXPECT_EQ(p.openSpanCount(), 2u);
  EXPECT_TRUE(p.endSpan(Stage::NicTx, 0, 1, 30));  // closes inner: 10 ns
  EXPECT_TRUE(p.endSpan(Stage::NicTx, 0, 1, 50));  // closes outer: 40 ns
  EXPECT_EQ(p.openSpanCount(), 0u);
  const Histogram& h = p.stage(Stage::NicTx);
  ASSERT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  // Distinct keys do not close each other's spans.
  p.beginSpan(Stage::Rx, 2, 0, 100);
  EXPECT_FALSE(p.endSpan(Stage::Rx, 3, 0, 110));
  EXPECT_EQ(p.mismatchCount(), 1u);
  EXPECT_EQ(p.openSpanCount(), 1u);
}

TEST(SpanProfilerTest, EndWithoutBeginIsAMismatch) {
  SpanProfiler p;
  EXPECT_FALSE(p.endSpan(Stage::Post, 0, 0, 5));
  EXPECT_EQ(p.mismatchCount(), 1u);
  EXPECT_EQ(p.totalSpans(), 0u);
}

TEST(SpanProfilerTest, EventRetentionIsBoundedAndOptional) {
  SpanProfiler off;
  off.emit(Stage::Wire, 0, 0, 0, 10, 1);
  EXPECT_TRUE(off.events().empty()) << "keepEvents defaults to off";
  EXPECT_EQ(off.eventsDropped(), 0u);

  SpanProfiler p(/*maxEvents=*/4);
  p.setKeepEvents(true);
  for (int i = 0; i < 6; ++i) {
    p.emit(Stage::Wire, 0, 0, i * 10, i * 10 + 5, 64);
  }
  EXPECT_EQ(p.events().size(), 4u);
  EXPECT_EQ(p.eventsDropped(), 2u);
  // Aggregation is unaffected by the retention cap.
  EXPECT_EQ(p.totalSpans(), 6u);
  EXPECT_EQ(p.stage(Stage::Wire).count(), 6u);
}

TEST(SpanProfilerTest, ClearResetsEverything) {
  SpanProfiler p;
  p.setKeepEvents(true);
  p.emit(Stage::Post, 0, 0, 0, 10, 1);
  p.beginSpan(Stage::Rx, 0, 0, 5);
  p.endSpan(Stage::Wire, 0, 0, 7);  // mismatch
  p.clear();
  EXPECT_EQ(p.totalSpans(), 0u);
  EXPECT_EQ(p.mismatchCount(), 0u);
  EXPECT_EQ(p.openSpanCount(), 0u);
  EXPECT_TRUE(p.events().empty());
  EXPECT_EQ(p.stage(Stage::Post).count(), 0u);
  EXPECT_DOUBLE_EQ(p.stageMeanSumUsec(), 0.0);
}

TEST(SpanProfilerTest, StageToStringIsExhaustive) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Stage::kCount); ++i) {
    const char* name = obs::toString(static_cast<Stage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "stage " << i;
  }
  EXPECT_STREQ(obs::toString(Stage::kCount), "?");
  EXPECT_TRUE(obs::isPipelineStage(Stage::Wire));
  EXPECT_FALSE(obs::isPipelineStage(Stage::EndToEnd));
}

// --- Trace JSON export ---------------------------------------------------

namespace {
std::string readFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Counts complete top-level JSON objects inside the traceEvents array by
/// brace balance — a hand-rolled check that the file is structurally sound
/// without a JSON library.
std::size_t countTraceEvents(const std::string& json) {
  const auto start = json.find('[');
  const auto end = json.rfind(']');
  if (start == std::string::npos || end == std::string::npos) return 0;
  std::size_t events = 0;
  int depth = 0;
  bool inString = false;
  for (std::size_t i = start + 1; i < end; ++i) {
    const char c = json[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') inString = true;
    if (c == '{' && depth++ == 0) ++events;
    if (c == '}') --depth;
  }
  return depth == 0 ? events : 0;
}
}  // namespace

TEST(TraceExportTest, RoundTripsSpansAndInstants) {
  const std::string path = ::testing::TempDir() + "vibe_trace_test.json";
  SpanProfiler p;
  p.setKeepEvents(true);
  p.emit(Stage::NicTx, 0, 3, 1000, 2500, 64);
  p.emit(Stage::Wire, 0, 3, 2500, 4000, 84);
  {
    obs::TraceJsonExporter exp(path);
    exp.exportSpans(p);
    sim::TraceRecord rec;
    rec.time = 4200;
    rec.category = sim::TraceCategory::Completion;
    rec.component = 1;
    rec.message = "cq write \"quoted\"\n";
    exp.instant(rec);
    EXPECT_EQ(exp.eventCount(), 3u);
    EXPECT_TRUE(exp.finish());
    EXPECT_TRUE(exp.finish()) << "finish must be idempotent";
  }
  const std::string json = readFile(path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(countTraceEvents(json), 3u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"nic_tx\""), std::string::npos);
  // 1000 ns begin renders as 1.000 us; duration 1500 ns as 1.500 us.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  // The quote and newline in the instant's message must be escaped.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExportTest, DestructorFlushesBufferedEvents) {
  const std::string path = ::testing::TempDir() + "vibe_trace_dtor.json";
  {
    obs::TraceJsonExporter exp(path);
    SpanProfiler p;
    p.setKeepEvents(true);
    p.emit(Stage::Post, 1, 0, 0, 50, 4);
    exp.exportSpans(p);
  }  // destructor calls finish()
  EXPECT_EQ(countTraceEvents(readFile(path)), 1u);
  std::remove(path.c_str());
}

// --- Live stage attribution ----------------------------------------------

TEST(ObsIntegration, StageSumMatchesEndToEndOnPingPong) {
  SpanProfiler spans;
  suite::ClusterConfig cc{nic::clanProfile()};
  cc.spans = &spans;
  suite::TransferConfig cfg;
  cfg.msgBytes = 64;
  cfg.iterations = 100;
  cfg.warmup = 4;
  const auto r = suite::runPingPong(cc, cfg);
  ASSERT_GT(r.latencyUsec, 0.0);

  // Every message (both directions, warmup included) got an envelope.
  EXPECT_EQ(spans.messageCount(),
            static_cast<std::size_t>(cfg.iterations + cfg.warmup) * 2);
  EXPECT_EQ(spans.mismatchCount(), 0u);
  EXPECT_EQ(spans.openSpanCount(), 0u);

  // The per-message stage sum must account for the full post-to-completion
  // envelope: the stages tile the journey, so the sum matches the measured
  // EndToEnd mean closely (small deviations only from pipelining overlap).
  const double e2eUs = spans.stage(Stage::EndToEnd).mean() / 1e3;
  const double sumUs = spans.stageMeanSumUsec();
  ASSERT_GT(e2eUs, 0.0);
  EXPECT_NEAR(sumUs, e2eUs, 0.1 * e2eUs)
      << spans.renderAttribution();
  // ...and the envelope itself sits at or below the measured one-way
  // latency (which adds the receiver's reap overhead).
  EXPECT_LE(e2eUs, r.latencyUsec * 1.05) << spans.renderAttribution();
  EXPECT_GE(r.latencyUsec, e2eUs * 0.75) << spans.renderAttribution();

  const std::string table = spans.renderAttribution();
  EXPECT_NE(table.find("nic_tx"), std::string::npos);
  EXPECT_NE(table.find("wire"), std::string::npos);
  EXPECT_NE(table.find("end-to-end"), std::string::npos);
}

TEST(ObsIntegration, AttachedProfilerDoesNotPerturbTiming) {
  suite::TransferConfig cfg;
  cfg.msgBytes = 1024;
  cfg.iterations = 50;
  const auto plain =
      suite::runPingPong(suite::ClusterConfig{nic::bviaProfile()}, cfg);
  SpanProfiler spans;
  suite::ClusterConfig cc{nic::bviaProfile()};
  cc.spans = &spans;
  const auto observed = suite::runPingPong(cc, cfg);
  // Observability is measurement, not load: identical virtual-time result.
  EXPECT_DOUBLE_EQ(observed.latencyUsec, plain.latencyUsec);
  EXPECT_DOUBLE_EQ(observed.latencyP99Usec, plain.latencyP99Usec);
  EXPECT_GT(spans.totalSpans(), 0u);
}

// --- countAbove / shard-merge identity -----------------------------------

TEST(HistogramTest, CountAboveIsExactAtBucketBoundaries) {
  Histogram h;
  // Values < 2^kSubBits sit in exact unit buckets.
  for (int v = 0; v < 8; ++v) h.add(v);
  EXPECT_EQ(h.countAbove(3), 4u);  // 4, 5, 6, 7
  EXPECT_EQ(h.countAbove(7), 0u);
  EXPECT_EQ(h.countAbove(0), 7u);

  // For a coarse bucket, a threshold at the bucket's upper bound excludes
  // exactly that bucket; one below its lower bound includes it.
  Histogram big;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  Histogram::bucketBounds(Histogram::bucketIndex(100'000), lo, hi);
  big.add(100'000);
  big.add(static_cast<std::int64_t>(hi) * 100);
  EXPECT_EQ(big.countAbove(hi), 1u);
  EXPECT_EQ(big.countAbove(lo - 1), 2u);
}

TEST(HistogramTest, ShardMergedQuantilesMatchSeriallyBuilt) {
  // Property check for the sweep harness's merge path: a histogram merged
  // from per-shard pieces must report the same quantiles as one built
  // serially from the same samples — identical buckets, identical
  // min/max clamp, so equality is exact, not approximate.
  std::uint64_t lcg = 12345;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  Histogram serial;
  Histogram shards[4];
  for (int i = 0; i < 4000; ++i) {
    // Mixed magnitudes: mostly ~20 us, a heavy tail into tens of ms.
    const std::int64_t v = (next() % 7 == 0)
                               ? static_cast<std::int64_t>(next() % 50'000'000)
                               : static_cast<std::int64_t>(next() % 20'000);
    serial.add(v);
    shards[i % 4].add(v);
  }
  Histogram merged;
  for (const Histogram& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_EQ(merged.min(), serial.min());
  EXPECT_EQ(merged.max(), serial.max());
  EXPECT_DOUBLE_EQ(merged.sum(), serial.sum());
  EXPECT_EQ(merged.bucketCounts(), serial.bucketCounts());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), serial.quantile(q)) << "q=" << q;
  }
}

// --- TimeSeriesSampler ---------------------------------------------------

TEST(TimeSeriesSamplerTest, CapturesEveryBoundaryExactlyOnce) {
  sim::Engine eng;
  int applied = 0;
  obs::TimeSeriesSampler sampler;
  sampler.setPeriod(100);
  sampler.addProbe("applied", [&](sim::SimTime) {
    return static_cast<double>(applied);
  });
  sampler.attach(eng);
  for (const sim::SimTime t : {5, 105, 110, 399, 400, 401, 1000}) {
    eng.postAt(t, [&] { ++applied; });
  }
  eng.run();
  sampler.flushUntil(eng.now());
  sampler.detach();

  ASSERT_EQ(sampler.windowCount(), 10u);
  for (std::size_t w = 0; w < sampler.windowCount(); ++w) {
    EXPECT_EQ(sampler.windowTime(w), static_cast<sim::SimTime>((w + 1) * 100));
  }
  // A boundary captures the state with every event strictly before it
  // applied: at t=400 the event at 399 has run, the one at 400 has not.
  EXPECT_DOUBLE_EQ(sampler.value(0, 0), 1.0);   // t=100: only t=5
  EXPECT_DOUBLE_EQ(sampler.value(1, 0), 3.0);   // t=200: 5, 105, 110
  EXPECT_DOUBLE_EQ(sampler.value(3, 0), 4.0);   // t=400: ... + 399
  EXPECT_DOUBLE_EQ(sampler.value(4, 0), 6.0);   // t=500: ... + 400, 401
  EXPECT_DOUBLE_EQ(sampler.value(9, 0), 6.0);   // t=1000: before the last
  EXPECT_EQ(sampler.droppedWindows(), 0u);
}

TEST(TimeSeriesSamplerTest, RingDropsOldestWindows) {
  obs::TimeSeriesSampler sampler(/*maxWindows=*/4);
  sampler.setPeriod(10);
  sampler.addProbe("t", [](sim::SimTime at) {
    return static_cast<double>(at);
  });
  sampler.flushUntil(100);
  EXPECT_EQ(sampler.windowCount(), 4u);
  EXPECT_EQ(sampler.droppedWindows(), 6u);
  EXPECT_EQ(sampler.windowTime(0), 70);
  EXPECT_EQ(sampler.windowTime(3), 100);
  EXPECT_DOUBLE_EQ(sampler.value(3, 0), 100.0);
}

TEST(TimeSeriesSamplerTest, RegistrationAndAttachmentAreValidated) {
  obs::TimeSeriesSampler sampler;
  EXPECT_THROW(sampler.setPeriod(0), sim::SimError);
  sim::Engine eng;
  EXPECT_THROW(sampler.attach(eng), sim::SimError) << "period unset";
  sampler.setPeriod(50);
  sampler.addProbe("a", [](sim::SimTime) { return 0.0; });
  sampler.attach(eng);
  EXPECT_THROW(sampler.attach(eng), sim::SimError) << "already attached";
  sampler.detach();
  sampler.flushUntil(50);
  // Rows are rectangular: no new series once a window exists.
  EXPECT_THROW(sampler.addProbe("b", [](sim::SimTime) { return 0.0; }),
               sim::SimError);
  const std::string csv = sampler.renderCsv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t_ns,a");
}

TEST(TimeSeriesSamplerTest, TimelineByteIdenticalAcrossJobsAndShards) {
  // The sampler stamps rows at virtual-time boundaries, so the CSV is a
  // determinism witness: identical across host-parallelism settings.
  std::vector<std::string> csvs;
  for (const char* jobs : {"1", "4"}) {
    for (const char* shardsEnv : {"1", "4"}) {
      testing::ScopedEnv j("VIBE_JOBS", jobs);
      testing::ScopedEnv s("VIBE_SIM_SHARDS", shardsEnv);
      obs::TimeSeriesSampler sampler;
      suite::ClusterConfig cc{nic::clanProfile()};
      cc.sampler = &sampler;
      cc.samplePeriod = sim::usec(20);
      suite::TransferConfig cfg;
      cfg.msgBytes = 256;
      cfg.iterations = 40;
      cfg.warmup = 2;
      (void)suite::runPingPong(cc, cfg);
      ASSERT_GT(sampler.windowCount(), 0u);
      csvs.push_back(sampler.renderCsv());
    }
  }
  for (std::size_t i = 1; i < csvs.size(); ++i) {
    EXPECT_EQ(csvs[i], csvs[0]) << "combo " << i << " diverged";
  }
}

// --- SloMonitor ----------------------------------------------------------

namespace {
/// One log-bucket of tolerance around `expected` (plus 1 for the unit
/// buckets): the resolution the monitor promises against an offline
/// recomputation from the exact window samples.
double bucketTolerance(double expected) {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  Histogram::bucketBounds(
      Histogram::bucketIndex(static_cast<std::uint64_t>(expected)), lo, hi);
  return static_cast<double>(hi - lo) + 1.0;
}
}  // namespace

TEST(SloMonitorTest, WindowQuantilesMatchOfflineRecomputation) {
  std::uint64_t lcg = 99;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  Histogram cumulative;
  obs::SloMonitor slo("lat", cumulative);
  for (int w = 1; w <= 8; ++w) {
    Histogram offline;  // rebuilt from exactly this window's samples
    const std::uint64_t base = 1000ull << w;  // magnitude drifts per window
    for (int i = 0; i < 300; ++i) {
      const std::int64_t v =
          static_cast<std::int64_t>(base + next() % (base * 3));
      cumulative.add(v);
      offline.add(v);
    }
    slo.sample(w * 1000);
    const obs::SloMonitor::Window& win = slo.lastWindow();
    EXPECT_EQ(win.t, w * 1000);
    EXPECT_EQ(win.count, offline.count());
    EXPECT_NEAR(win.p50, offline.quantile(0.5), bucketTolerance(win.p50));
    EXPECT_NEAR(win.p99, offline.quantile(0.99), bucketTolerance(win.p99));
    EXPECT_NEAR(win.p999, offline.quantile(0.999),
                bucketTolerance(win.p999));
  }
  EXPECT_EQ(slo.windows().size(), 8u);
}

TEST(SloMonitorTest, BurnRateSpendsTheErrorBudget) {
  Histogram h;
  obs::SloMonitor slo("lat", h);
  // Threshold on an exact bucket boundary so countAbove has no slack.
  std::uint64_t lo = 0;
  std::uint64_t thr = 0;
  Histogram::bucketBounds(Histogram::bucketIndex(100'000), lo, thr);
  slo.setThresholdNs(thr);
  slo.setTarget(0.9);

  for (int i = 0; i < 95; ++i) h.add(1000);
  for (int i = 0; i < 5; ++i) {
    h.add(static_cast<std::int64_t>(thr) * 50);
  }
  slo.sample(100);
  const obs::SloMonitor::Window& w = slo.lastWindow();
  EXPECT_EQ(w.count, 100u);
  EXPECT_EQ(w.overThreshold, 5u);
  // 5% of samples over, 10% budget: half the budget burned.
  EXPECT_NEAR(w.burnRate, 0.5, 1e-9);

  // A clean second window burns nothing.
  for (int i = 0; i < 10; ++i) h.add(500);
  slo.sample(200);
  EXPECT_EQ(slo.lastWindow().overThreshold, 0u);
  EXPECT_DOUBLE_EQ(slo.lastWindow().burnRate, 0.0);
  EXPECT_THROW(slo.setTarget(1.0), sim::SimError);
  EXPECT_THROW(slo.setTarget(0.0), sim::SimError);
}

TEST(SloMonitorTest, ThresholdCrossingsEmitUserTraceRecords) {
  Histogram h;
  sim::Tracer tracer;
  tracer.enable(sim::TraceCategory::User);
  obs::SloMonitor slo("rpc", h);
  slo.setThresholdNs(10'000);
  slo.setTracer(&tracer, /*component=*/7);

  for (int i = 0; i < 100; ++i) h.add(100);
  slo.sample(100);
  EXPECT_FALSE(slo.breached());
  for (int i = 0; i < 100; ++i) h.add(1'000'000);
  slo.sample(200);
  EXPECT_TRUE(slo.breached());
  for (int i = 0; i < 100; ++i) h.add(100);
  slo.sample(300);
  EXPECT_FALSE(slo.breached());
  EXPECT_EQ(slo.crossings(), 2u);

  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].category, sim::TraceCategory::User);
  EXPECT_EQ(records[0].component, 7u);
  EXPECT_NE(records[0].message.find("slo rpc breach"), std::string::npos);
  EXPECT_NE(records[1].message.find("slo rpc recover"), std::string::npos);
}

TEST(SloMonitorTest, BurstStraddlingWindowBoundariesKeepsHysteresis) {
  Histogram cumulative;
  sim::Tracer tracer;
  tracer.enable(sim::TraceCategory::User);
  obs::SloMonitor slo("burst", cumulative);
  slo.setThresholdNs(10'000);
  slo.setTracer(&tracer);

  // Offline replay of the same boundaries: diff the bucket counts, apply
  // quantileFromCounts to the delta, and replicate the monitor's rule
  // that only a non-empty window can flip the breach state.
  std::vector<std::uint64_t> prev;
  std::uint64_t offlineCrossings = 0;
  bool offlineOver = false;
  auto boundary = [&](sim::SimTime t) {
    const std::vector<std::uint64_t>& cur = cumulative.bucketCounts();
    std::vector<std::uint64_t> delta(cur.size(), 0);
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      delta[i] = cur[i] - (i < prev.size() ? prev[i] : 0);
      n += delta[i];
    }
    prev = cur;
    if (n > 0) {
      const bool nowOver =
          obs::SloMonitor::quantileFromCounts(delta, 0.99) > 10'000.0;
      if (nowOver != offlineOver) {
        ++offlineCrossings;
        offlineOver = nowOver;
      }
    }
    slo.sample(t);
  };

  // Window 1: healthy baseline.
  for (int i = 0; i < 50; ++i) cumulative.add(1'000);
  boundary(100);
  EXPECT_FALSE(slo.breached());
  // Window 2: a burst lands entirely before the next boundary — breach.
  for (int i = 0; i < 50; ++i) cumulative.add(1'000'000);
  boundary(200);
  EXPECT_TRUE(slo.breached());
  // Window 3: the burst straddles the boundary — this window happens to
  // hold zero samples. An empty window carries no evidence either way,
  // so it must NOT read as a recovery (hysteresis holds).
  boundary(300);
  EXPECT_TRUE(slo.breached());
  EXPECT_EQ(slo.crossingCount(), 1u);
  // Window 4: the tail of the burst, still slow.
  for (int i = 0; i < 50; ++i) cumulative.add(1'000'000);
  boundary(400);
  EXPECT_TRUE(slo.breached());
  // Window 5: healthy again — the one genuine recovery.
  for (int i = 0; i < 50; ++i) cumulative.add(1'000);
  boundary(500);
  EXPECT_FALSE(slo.breached());

  EXPECT_EQ(slo.crossingCount(), 2u);
  EXPECT_EQ(slo.crossingCount(), offlineCrossings);
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].message.find("slo burst breach"), std::string::npos);
  EXPECT_EQ(records[0].time, 200);
  EXPECT_NE(records[1].message.find("slo burst recover"), std::string::npos);
  EXPECT_EQ(records[1].time, 500);
}

TEST(SloMonitorTest, BindToSamplerAlignsWindowsWithRows) {
  sim::Engine eng;
  Histogram h;
  obs::TimeSeriesSampler sampler;
  sampler.setPeriod(100);
  obs::SloMonitor slo("x", h);
  slo.bindTo(sampler);
  sampler.attach(eng);
  for (int i = 1; i <= 10; ++i) {
    eng.postAt(i * 37, [&, i] { h.add(i * 10); });
  }
  eng.run();
  sampler.flushUntil(eng.now());
  sampler.detach();
  ASSERT_EQ(sampler.windowCount(), 3u);
  ASSERT_EQ(slo.windows().size(), 3u);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(slo.windows()[w].t, sampler.windowTime(w));
    // The row's p50 series is the window's p50, captured in the same pass.
    EXPECT_DOUBLE_EQ(sampler.value(w, 0), slo.windows()[w].p50);
  }
  const std::string header =
      sampler.renderCsv().substr(0, sampler.renderCsv().find('\n'));
  EXPECT_EQ(header, "t_ns,x/p50_ns,x/p99_ns,x/p999_ns,x/p9999_ns,x/burn_rate");
}

// --- SpanProfiler retention under sampler load ---------------------------

TEST(SpanProfilerTest, RetentionCapHoldsUnderSamplerLoad) {
  SpanProfiler spans(/*maxEvents=*/64);
  spans.setKeepEvents(true);
  obs::TimeSeriesSampler sampler;
  suite::ClusterConfig cc{nic::clanProfile()};
  cc.spans = &spans;
  cc.sampler = &sampler;
  cc.samplePeriod = sim::usec(10);
  suite::TransferConfig cfg;
  cfg.msgBytes = 64;
  cfg.iterations = 100;
  cfg.warmup = 4;
  (void)suite::runPingPong(cc, cfg);
  EXPECT_GT(sampler.windowCount(), 0u);
  EXPECT_EQ(spans.events().size(), 64u);
  EXPECT_GT(spans.eventsDropped(), 0u);
  // The retention cap bounds raw events only; aggregation still sees all.
  EXPECT_EQ(spans.messageCount(),
            static_cast<std::size_t>(cfg.iterations + cfg.warmup) * 2);
}

// --- hostile-name JSON round trips ---------------------------------------

namespace {
/// String-aware brace balance plus a raw-control-character scan: the
/// structural soundness check for emitters that don't write traceEvents.
bool jsonStructurallySound(const std::string& json) {
  int depth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (static_cast<unsigned char>(c) < 0x20 && c != '\n') {
      return false;  // control characters must be escaped
    }
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') inString = true;
    if (c == '{') ++depth;
    if (c == '}' && --depth < 0) return false;
  }
  return depth == 0 && !inString;
}
}  // namespace

TEST(JsonEscapeTest, EscapesEveryHostileByte) {
  EXPECT_EQ(obs::jsonEscape("plain"), "plain");
  EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::jsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(obs::jsonEscape("a\b\f"), "a\\b\\f");
  EXPECT_EQ(obs::jsonNumber(1.5), "1.5");
  EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonEscapeTest, HostileNamesSurviveAllEmitters) {
  // Split the literal so \x01 doesn't greedily absorb the 'c' after it.
  const std::string hostile = "evil\"name\\ with\nnewline\tand\x01" "ctrl";

  // Trace exporter: counter tracks and instants.
  const std::string path = ::testing::TempDir() + "vibe_hostile_trace.json";
  {
    obs::TraceJsonExporter exp(path);
    exp.counter(hostile, 1000, 42.0);
    sim::TraceRecord rec;
    rec.time = 2000;
    rec.message = hostile;
    exp.instant(rec);
    EXPECT_TRUE(exp.finish());
  }
  const std::string trace = readFile(path);
  EXPECT_EQ(countTraceEvents(trace), 2u);
  EXPECT_TRUE(jsonStructurallySound(trace)) << trace;
  EXPECT_NE(trace.find("evil\\\"name\\\\ with\\nnewline\\tand\\u0001ctrl"),
            std::string::npos);
  std::remove(path.c_str());

  // Metrics JSON: hostile metric names in every section.
  MetricsRegistry reg;
  reg.counter(hostile).add(3);
  reg.gauge("g\"\\").set(1.25);
  reg.histogram("h\n").add(5000);
  const std::string metrics = obs::renderMetricsJson(reg);
  EXPECT_TRUE(jsonStructurallySound(metrics)) << metrics;
  EXPECT_NE(metrics.find("\"schema\": 2"), std::string::npos);
  EXPECT_NE(metrics.find("g\\\"\\\\"), std::string::npos);
  EXPECT_NE(metrics.find("h\\n"), std::string::npos);
}

// --- FlightRecorder ------------------------------------------------------

TEST(FlightRecorderTest, DumpWritesRingsAndReason) {
  obs::TimeSeriesSampler sampler;
  sampler.setPeriod(100);
  sampler.addProbe("depth", [](sim::SimTime at) {
    return static_cast<double>(at) / 100.0;
  });
  sampler.flushUntil(300);

  Histogram h;
  obs::SloMonitor slo("lat", h);
  for (int i = 0; i < 10; ++i) h.add(1000 * (i + 1));
  slo.sample(300);

  sim::Tracer tracer;
  tracer.enable(sim::TraceCategory::User);
  tracer.record(250, sim::TraceCategory::User, 3, "mark \"one\"");

  const std::string path = ::testing::TempDir() + "vibe_flight.json";
  obs::FlightRecorder rec(path);
  rec.setSampler(&sampler);
  rec.setSlo(&slo);
  rec.setTracer(&tracer);
  ASSERT_TRUE(rec.dump("it broke \"badly\"\n"));
  EXPECT_EQ(rec.dumps(), 1u);

  const std::string json = readFile(path);
  EXPECT_TRUE(jsonStructurallySound(json)) << json;
  EXPECT_NE(json.find("it broke \\\"badly\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"slo\""), std::string::npos);
  EXPECT_NE(json.find("mark \\\"one\\\""), std::string::npos);

  ASSERT_TRUE(rec.dump("second"));
  EXPECT_EQ(rec.dumps(), 2u);
  EXPECT_NE(readFile(path).find("\"second\""), std::string::npos)
      << "latest dump wins";
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, InvariantViolationTriggersOneDump) {
  // With VIBE_FLIGHT_OUT set, dump there and keep the file — CI runs this
  // test as its flight-recorder smoke and uploads the dump as an artifact.
  const char* envPath = obs::FlightRecorder::envPath();
  const std::string path =
      envPath ? envPath : ::testing::TempDir() + "vibe_flight_inv.json";
  std::remove(path.c_str());
  obs::FlightRecorder rec(path);
  obs::TimeSeriesSampler sampler;
  sampler.setPeriod(5);
  sampler.addProbe("inflight", [](sim::SimTime at) {
    return static_cast<double>(at % 3);
  });
  sampler.flushUntil(10);
  sim::Tracer tracer;
  tracer.enable(sim::TraceCategory::Rx);
  rec.setSampler(&sampler);
  rec.setTracer(&tracer);
  fault::InvariantChecker checker;
  checker.setViolationHook(rec.violationHook());

  sim::TraceRecord bad;
  bad.time = 10;
  bad.category = sim::TraceCategory::Rx;
  bad.component = 0;
  bad.message = "deliver vi=1 rel=Reliable";  // no msg= -> unparseable
  tracer.record(bad.time, bad.category, bad.component, bad.message);
  checker.onRecord(bad);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(rec.dumps(), 1u);
  const std::string dump = readFile(path);
  EXPECT_NE(dump.find("unparseable deliver record"), std::string::npos);
  EXPECT_TRUE(jsonStructurallySound(dump)) << dump;
  EXPECT_NE(dump.find("\"inflight\""), std::string::npos);

  // Later violations do not thrash the dump: first-failure state wins.
  checker.onRecord(bad);
  EXPECT_EQ(checker.violations().size(), 2u);
  EXPECT_EQ(rec.dumps(), 1u);
  if (envPath == nullptr) std::remove(path.c_str());
}

TEST(FlightRecorderTest, FromEnvReadsVibeFlightOut) {
  {
    testing::ScopedEnv env("VIBE_FLIGHT_OUT", nullptr);
    EXPECT_EQ(obs::FlightRecorder::envPath(), nullptr);
    EXPECT_EQ(obs::FlightRecorder::fromEnv(), nullptr);
  }
  {
    const std::string path = ::testing::TempDir() + "vibe_flight_env.json";
    testing::ScopedEnv env("VIBE_FLIGHT_OUT", path.c_str());
    auto rec = obs::FlightRecorder::fromEnv();
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->path(), path);
  }
}

}  // namespace
}  // namespace vibe
