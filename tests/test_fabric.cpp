// Unit tests for the SAN fabric: link timing, FIFO ordering, loss
// injection, and switch forwarding.
#include <gtest/gtest.h>

#include <vector>

#include "fabric/link.hpp"
#include "fabric/network.hpp"
#include "simcore/engine.hpp"

namespace vibe::fabric {
namespace {

Packet makeData(NodeId src, NodeId dst, std::size_t payloadBytes) {
  Packet p;
  p.kind = PacketKind::Data;
  p.src = src;
  p.dst = dst;
  p.payload.assign(payloadBytes, std::byte{0xAB});
  return p;
}

TEST(LinkTest, DeliveryTimeIsSerializationPlusPropagation) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;  // 10 ns/byte
  lp.propagation = sim::usec(1);
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  sim::SimTime arrival = -1;
  link.connect([&](Packet&&) { arrival = eng.now(); });
  link.send(makeData(0, 1, 1000));  // 10 us serialization
  eng.run();
  EXPECT_EQ(arrival, sim::usec(11));
}

TEST(LinkTest, HeaderBytesCountTowardWireTime) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = 0;
  lp.headerBytes = 32;
  Link link(eng, "l", lp);
  sim::SimTime arrival = -1;
  link.connect([&](Packet&&) { arrival = eng.now(); });
  link.send(makeData(0, 1, 0));
  eng.run();
  EXPECT_EQ(arrival, sim::nsec(320));
}

TEST(LinkTest, BackToBackFramesQueueFifo) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = 0;
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  std::vector<sim::SimTime> arrivals;
  link.connect([&](Packet&&) { arrivals.push_back(eng.now()); });
  for (int i = 0; i < 3; ++i) link.send(makeData(0, 1, 100));  // 1 us each
  eng.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::usec(1));
  EXPECT_EQ(arrivals[1], sim::usec(2));
  EXPECT_EQ(arrivals[2], sim::usec(3));
}

TEST(LinkTest, LossRateDropsApproximatelyTheRequestedFraction) {
  sim::Engine eng;
  LinkParams lp;
  lp.lossRate = 0.25;
  lp.seed = 7;
  Link link(eng, "l", lp);
  int delivered = 0;
  link.connect([&](Packet&&) { ++delivered; });
  const int n = 4000;
  for (int i = 0; i < n; ++i) link.send(makeData(0, 1, 8));
  eng.run();
  EXPECT_EQ(link.framesSent(), static_cast<std::uint64_t>(n));
  const double dropFrac =
      static_cast<double>(link.framesDropped()) / n;
  EXPECT_NEAR(dropFrac, 0.25, 0.03);
  EXPECT_EQ(delivered + static_cast<int>(link.framesDropped()), n);
}

TEST(LinkTest, SetLossRateAppliesOnlyToFramesSentAfterTheCall) {
  // The loss decision is made at send() time: raising the rate to 1.0
  // cannot retroactively drop frames already queued on the wire, and
  // frames sent after the call all drop.
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = sim::usec(5);
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  int delivered = 0;
  link.connect([&](Packet&&) { ++delivered; });
  for (int i = 0; i < 4; ++i) link.send(makeData(0, 1, 100));
  link.setLossRate(1.0);  // in-flight frames are already committed
  for (int i = 0; i < 4; ++i) link.send(makeData(0, 1, 100));
  eng.run();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(link.framesDropped(), 4u);
}

TEST(LinkTest, LossWindowCoversExactlyItsHalfOpenInterval) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;  // 1 us per 100-byte frame
  lp.propagation = 0;
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  std::vector<sim::SimTime> arrivals;
  link.connect([&](Packet&&) { arrivals.push_back(eng.now()); });
  link.scheduleLossWindow(sim::usec(10), sim::usec(20), 1.0);
  // One frame before, one inside, one at the (exclusive) end, one after.
  eng.postAt(sim::usec(5), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(15), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(20), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(25), [&] { link.send(makeData(0, 1, 100)); });
  eng.run();
  EXPECT_EQ(link.framesDropped(), 1u);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::usec(6));
  EXPECT_EQ(arrivals[1], sim::usec(21));  // end is exclusive
  EXPECT_EQ(arrivals[2], sim::usec(26));
}

TEST(LinkTest, OverlappingLossWindowsLatestScheduledWins) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = 0;
  lp.headerBytes = 0;
  lp.lossRate = 1.0;  // base: everything drops
  Link link(eng, "l", lp);
  int delivered = 0;
  link.connect([&](Packet&&) { ++delivered; });
  // A long 100%-loss window, then a later-scheduled loss-free window
  // punched into its middle: the newest covering window must win.
  link.scheduleLossWindow(0, sim::usec(100), 1.0);
  link.scheduleLossWindow(sim::usec(40), sim::usec(60), 0.0);
  eng.postAt(sim::usec(10), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(50), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(90), [&] { link.send(makeData(0, 1, 100)); });
  // After every window expires the base rate applies again (still 1.0).
  eng.postAt(sim::usec(150), [&] { link.send(makeData(0, 1, 100)); });
  eng.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(link.framesDropped(), 3u);
}

TEST(LinkTest, CorruptWindowDeliversFlaggedFramesAndCountsThem) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = 0;
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  int corrupted = 0;
  int clean = 0;
  link.connect([&](Packet&& p) { (p.corrupted ? corrupted : clean)++; });
  link.scheduleCorruptWindow(0, sim::usec(50), 1.0);
  eng.postAt(sim::usec(10), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(20), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(70), [&] { link.send(makeData(0, 1, 100)); });
  eng.run();
  // Corrupted frames are still delivered (the receiving NIC drops them);
  // the wire never discards them, so framesDropped stays zero.
  EXPECT_EQ(corrupted, 2);
  EXPECT_EQ(clean, 1);
  EXPECT_EQ(link.framesCorrupted(), 2u);
  EXPECT_EQ(link.framesDropped(), 0u);
}

TEST(LinkTest, LatencyWindowDelaysOnlyFramesSentInside) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;  // 1 us serialization for 100 bytes
  lp.propagation = sim::usec(1);
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  std::vector<sim::SimTime> arrivals;
  link.connect([&](Packet&&) { arrivals.push_back(eng.now()); });
  link.scheduleLatencyWindow(sim::usec(10), sim::usec(20), sim::usec(7));
  eng.postAt(0, [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(15), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(30), [&] { link.send(makeData(0, 1, 100)); });
  eng.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::usec(2));   // 1 ser + 1 prop
  EXPECT_EQ(arrivals[1], sim::usec(24));  // + 7 spike
  EXPECT_EQ(arrivals[2], sim::usec(32));  // window over
}

TEST(NetworkTest, AggregatesDropAndCorruptionCountsAcrossLinks) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 2;
  Network net(eng, np);
  net.setReceiver(0, [](Packet&&) {});
  net.setReceiver(1, [](Packet&&) {});
  net.uplink(0).scheduleLossWindow(0, sim::usec(1), 1.0);
  net.downlink(1).scheduleCorruptWindow(0, sim::kSecond, 1.0);
  // First frame enters inside the loss window and drops on the uplink;
  // the second enters after it closed, survives, and gets corrupted on
  // the downlink.
  eng.postAt(0, [&] { net.send(makeData(0, 1, 64)); });
  eng.postAt(sim::usec(10), [&] { net.send(makeData(0, 1, 64)); });
  eng.run();
  EXPECT_EQ(net.framesDropped(), 1u);
  EXPECT_EQ(net.framesCorrupted(), 1u);
  EXPECT_EQ(net.uplink(0).framesDropped(), 1u);
  EXPECT_EQ(net.downlink(1).framesCorrupted(), 1u);
}

TEST(LinkTest, SendWithoutSinkThrows) {
  sim::Engine eng;
  Link link(eng, "l", LinkParams{});
  EXPECT_THROW(link.send(makeData(0, 1, 8)), sim::SimError);
}

TEST(NetworkTest, ForwardsToDestinationOnly) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  Network net(eng, np);
  std::vector<int> got(4, 0);
  for (NodeId n = 0; n < 4; ++n) {
    net.setReceiver(n, [&got, n](Packet&&) { ++got[n]; });
  }
  net.send(makeData(0, 2, 64));
  net.send(makeData(3, 1, 64));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 1, 0}));
  EXPECT_EQ(net.packetsForwarded(), 2u);
}

TEST(NetworkTest, RejectsSelfAndOutOfRange) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 2;
  Network net(eng, np);
  EXPECT_THROW(net.send(makeData(0, 0, 8)), sim::SimError);
  EXPECT_THROW(net.send(makeData(0, 5, 8)), sim::SimError);
}

TEST(NetworkTest, PayloadArrivesIntact) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 2;
  Network net(eng, np);
  Packet p = makeData(0, 1, 0);
  for (int i = 0; i < 256; ++i) p.payload.push_back(std::byte(i));
  std::vector<std::byte> received;
  net.setReceiver(1, [&](Packet&& in) { received = std::move(in.payload); });
  net.setReceiver(0, [](Packet&&) {});
  net.send(std::move(p));
  eng.run();
  ASSERT_EQ(received.size(), 256u);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(received[i], std::byte(i));
}

TEST(NetworkTest, PerPathOrderIsPreserved) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 3;
  Network net(eng, np);
  std::vector<std::uint64_t> seqs;
  net.setReceiver(1, [&](Packet&& in) { seqs.push_back(in.msgSeq); });
  net.setReceiver(0, [](Packet&&) {});
  net.setReceiver(2, [](Packet&&) {});
  for (std::uint64_t i = 0; i < 20; ++i) {
    Packet p = makeData(0, 1, 100 + 37 * (i % 5));
    p.msgSeq = i;
    net.send(std::move(p));
  }
  eng.run();
  ASSERT_EQ(seqs.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(TreeTopologyTest, CrossLeafPaysTrunkAndRootCosts) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  np.nodesPerSwitch = 2;  // leaves {0,1} and {2,3}
  np.link.bandwidthMBps = 100.0;
  np.link.propagation = sim::usec(1);
  np.link.headerBytes = 0;
  np.trunk = np.link;
  np.switchLatency = sim::usec(2);
  np.rootSwitchLatency = sim::usec(3);
  Network net(eng, np);
  sim::SimTime local = 0;
  sim::SimTime remote = 0;
  for (NodeId n = 0; n < 4; ++n) {
    net.setReceiver(n, [&, n](Packet&&) {
      (n == 1 ? local : remote) = eng.now();
    });
  }
  net.send(makeData(0, 1, 100));  // same leaf
  eng.run();
  // up(1us ser + 1us prop) + leaf(2us) + down(1+1) = 6us.
  EXPECT_EQ(local, sim::usec(6));

  // Second send departs at t=6 (after run() drained the first).
  net.send(makeData(0, 2, 100));  // cross leaf
  eng.run();
  // Full cross-leaf path: up(2) + leaf(2) + trunkUp(2) + root(3) +
  // trunkDown(2) + leaf(2) + down(2) = 15 us.
  EXPECT_EQ(remote - local, sim::usec(15));
  EXPECT_EQ(net.packetsViaRoot(), 1u);
  EXPECT_EQ(net.leafOf(0), 0u);
  EXPECT_EQ(net.leafOf(3), 1u);
}

TEST(TreeTopologyTest, SharedTrunkSerializesCrossLeafFlows) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  np.nodesPerSwitch = 2;
  np.link.bandwidthMBps = 100.0;
  np.link.headerBytes = 0;
  np.trunk = np.link;
  Network net(eng, np);
  std::vector<sim::SimTime> arrivals;
  for (NodeId n = 0; n < 4; ++n) {
    net.setReceiver(n, [&](Packet&&) { arrivals.push_back(eng.now()); });
  }
  // Two flows from the same leaf to the other leaf share trunkUp[0]:
  // their frames serialize there even though host uplinks are distinct.
  net.send(makeData(0, 2, 1000));  // 10 us serialization per hop
  net.send(makeData(1, 3, 1000));
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second arrival is a full trunk serialization later, not parallel.
  EXPECT_GE(arrivals[1] - arrivals[0], sim::usec(10));
}

TEST(TreeTopologyTest, EndToEndViplAcrossLeaves) {
  // A full VIPL ping across the root switch (via the suite Cluster).
  // Placed here to keep the topology feature self-contained.
  SUCCEED();  // covered by ClusterTreeTopology in test_vibe_suite.cpp
}

}  // namespace
}  // namespace vibe::fabric
