// Unit tests for the SAN fabric: link timing, FIFO ordering, loss
// injection, and switch forwarding.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "fabric/domain.hpp"
#include "fabric/link.hpp"
#include "fabric/network.hpp"
#include "simcore/engine.hpp"

namespace vibe::fabric {
namespace {

Packet makeData(NodeId src, NodeId dst, std::size_t payloadBytes) {
  Packet p;
  p.kind = PacketKind::Data;
  p.src = src;
  p.dst = dst;
  p.payload.assign(payloadBytes, std::byte{0xAB});
  return p;
}

TEST(LinkTest, DeliveryTimeIsSerializationPlusPropagation) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;  // 10 ns/byte
  lp.propagation = sim::usec(1);
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  sim::SimTime arrival = -1;
  link.connect([&](Packet&&) { arrival = eng.now(); });
  link.send(makeData(0, 1, 1000));  // 10 us serialization
  eng.run();
  EXPECT_EQ(arrival, sim::usec(11));
}

TEST(LinkTest, HeaderBytesCountTowardWireTime) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = 0;
  lp.headerBytes = 32;
  Link link(eng, "l", lp);
  sim::SimTime arrival = -1;
  link.connect([&](Packet&&) { arrival = eng.now(); });
  link.send(makeData(0, 1, 0));
  eng.run();
  EXPECT_EQ(arrival, sim::nsec(320));
}

TEST(LinkTest, BackToBackFramesQueueFifo) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = 0;
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  std::vector<sim::SimTime> arrivals;
  link.connect([&](Packet&&) { arrivals.push_back(eng.now()); });
  for (int i = 0; i < 3; ++i) link.send(makeData(0, 1, 100));  // 1 us each
  eng.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::usec(1));
  EXPECT_EQ(arrivals[1], sim::usec(2));
  EXPECT_EQ(arrivals[2], sim::usec(3));
}

TEST(LinkTest, LossRateDropsApproximatelyTheRequestedFraction) {
  sim::Engine eng;
  LinkParams lp;
  lp.lossRate = 0.25;
  lp.seed = 7;
  Link link(eng, "l", lp);
  int delivered = 0;
  link.connect([&](Packet&&) { ++delivered; });
  const int n = 4000;
  for (int i = 0; i < n; ++i) link.send(makeData(0, 1, 8));
  eng.run();
  EXPECT_EQ(link.framesSent(), static_cast<std::uint64_t>(n));
  const double dropFrac =
      static_cast<double>(link.framesDropped()) / n;
  EXPECT_NEAR(dropFrac, 0.25, 0.03);
  EXPECT_EQ(delivered + static_cast<int>(link.framesDropped()), n);
}

TEST(LinkTest, SetLossRateAppliesOnlyToFramesSentAfterTheCall) {
  // The loss decision is made at send() time: raising the rate to 1.0
  // cannot retroactively drop frames already queued on the wire, and
  // frames sent after the call all drop.
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = sim::usec(5);
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  int delivered = 0;
  link.connect([&](Packet&&) { ++delivered; });
  for (int i = 0; i < 4; ++i) link.send(makeData(0, 1, 100));
  link.setLossRate(1.0);  // in-flight frames are already committed
  for (int i = 0; i < 4; ++i) link.send(makeData(0, 1, 100));
  eng.run();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(link.framesDropped(), 4u);
}

TEST(LinkTest, LossWindowCoversExactlyItsHalfOpenInterval) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;  // 1 us per 100-byte frame
  lp.propagation = 0;
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  std::vector<sim::SimTime> arrivals;
  link.connect([&](Packet&&) { arrivals.push_back(eng.now()); });
  link.scheduleLossWindow(sim::usec(10), sim::usec(20), 1.0);
  // One frame before, one inside, one at the (exclusive) end, one after.
  eng.postAt(sim::usec(5), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(15), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(20), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(25), [&] { link.send(makeData(0, 1, 100)); });
  eng.run();
  EXPECT_EQ(link.framesDropped(), 1u);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::usec(6));
  EXPECT_EQ(arrivals[1], sim::usec(21));  // end is exclusive
  EXPECT_EQ(arrivals[2], sim::usec(26));
}

TEST(LinkTest, OverlappingLossWindowsLatestScheduledWins) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = 0;
  lp.headerBytes = 0;
  lp.lossRate = 1.0;  // base: everything drops
  Link link(eng, "l", lp);
  int delivered = 0;
  link.connect([&](Packet&&) { ++delivered; });
  // A long 100%-loss window, then a later-scheduled loss-free window
  // punched into its middle: the newest covering window must win.
  link.scheduleLossWindow(0, sim::usec(100), 1.0);
  link.scheduleLossWindow(sim::usec(40), sim::usec(60), 0.0);
  eng.postAt(sim::usec(10), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(50), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(90), [&] { link.send(makeData(0, 1, 100)); });
  // After every window expires the base rate applies again (still 1.0).
  eng.postAt(sim::usec(150), [&] { link.send(makeData(0, 1, 100)); });
  eng.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(link.framesDropped(), 3u);
}

TEST(LinkTest, CorruptWindowDeliversFlaggedFramesAndCountsThem) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;
  lp.propagation = 0;
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  int corrupted = 0;
  int clean = 0;
  link.connect([&](Packet&& p) { (p.corrupted ? corrupted : clean)++; });
  link.scheduleCorruptWindow(0, sim::usec(50), 1.0);
  eng.postAt(sim::usec(10), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(20), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(70), [&] { link.send(makeData(0, 1, 100)); });
  eng.run();
  // Corrupted frames are still delivered (the receiving NIC drops them);
  // the wire never discards them, so framesDropped stays zero.
  EXPECT_EQ(corrupted, 2);
  EXPECT_EQ(clean, 1);
  EXPECT_EQ(link.framesCorrupted(), 2u);
  EXPECT_EQ(link.framesDropped(), 0u);
}

TEST(LinkTest, LatencyWindowDelaysOnlyFramesSentInside) {
  sim::Engine eng;
  LinkParams lp;
  lp.bandwidthMBps = 100.0;  // 1 us serialization for 100 bytes
  lp.propagation = sim::usec(1);
  lp.headerBytes = 0;
  Link link(eng, "l", lp);
  std::vector<sim::SimTime> arrivals;
  link.connect([&](Packet&&) { arrivals.push_back(eng.now()); });
  link.scheduleLatencyWindow(sim::usec(10), sim::usec(20), sim::usec(7));
  eng.postAt(0, [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(15), [&] { link.send(makeData(0, 1, 100)); });
  eng.postAt(sim::usec(30), [&] { link.send(makeData(0, 1, 100)); });
  eng.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::usec(2));   // 1 ser + 1 prop
  EXPECT_EQ(arrivals[1], sim::usec(24));  // + 7 spike
  EXPECT_EQ(arrivals[2], sim::usec(32));  // window over
}

TEST(NetworkTest, AggregatesDropAndCorruptionCountsAcrossLinks) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 2;
  Network net(eng, np);
  net.setReceiver(0, [](Packet&&) {});
  net.setReceiver(1, [](Packet&&) {});
  net.uplink(0).scheduleLossWindow(0, sim::usec(1), 1.0);
  net.downlink(1).scheduleCorruptWindow(0, sim::kSecond, 1.0);
  // First frame enters inside the loss window and drops on the uplink;
  // the second enters after it closed, survives, and gets corrupted on
  // the downlink.
  eng.postAt(0, [&] { net.send(makeData(0, 1, 64)); });
  eng.postAt(sim::usec(10), [&] { net.send(makeData(0, 1, 64)); });
  eng.run();
  EXPECT_EQ(net.framesDropped(), 1u);
  EXPECT_EQ(net.framesCorrupted(), 1u);
  EXPECT_EQ(net.uplink(0).framesDropped(), 1u);
  EXPECT_EQ(net.downlink(1).framesCorrupted(), 1u);
}

TEST(LinkTest, SendWithoutSinkThrows) {
  sim::Engine eng;
  Link link(eng, "l", LinkParams{});
  EXPECT_THROW(link.send(makeData(0, 1, 8)), sim::SimError);
}

TEST(NetworkTest, ForwardsToDestinationOnly) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  Network net(eng, np);
  std::vector<int> got(4, 0);
  for (NodeId n = 0; n < 4; ++n) {
    net.setReceiver(n, [&got, n](Packet&&) { ++got[n]; });
  }
  net.send(makeData(0, 2, 64));
  net.send(makeData(3, 1, 64));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 1, 0}));
  EXPECT_EQ(net.packetsForwarded(), 2u);
}

TEST(NetworkTest, RejectsSelfAndOutOfRange) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 2;
  Network net(eng, np);
  EXPECT_THROW(net.send(makeData(0, 0, 8)), sim::SimError);
  EXPECT_THROW(net.send(makeData(0, 5, 8)), sim::SimError);
}

TEST(NetworkTest, PayloadArrivesIntact) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 2;
  Network net(eng, np);
  Packet p = makeData(0, 1, 0);
  for (int i = 0; i < 256; ++i) p.payload.push_back(std::byte(i));
  std::vector<std::byte> received;
  net.setReceiver(1, [&](Packet&& in) { received = std::move(in.payload); });
  net.setReceiver(0, [](Packet&&) {});
  net.send(std::move(p));
  eng.run();
  ASSERT_EQ(received.size(), 256u);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(received[i], std::byte(i));
}

TEST(NetworkTest, PerPathOrderIsPreserved) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 3;
  Network net(eng, np);
  std::vector<std::uint64_t> seqs;
  net.setReceiver(1, [&](Packet&& in) { seqs.push_back(in.msgSeq); });
  net.setReceiver(0, [](Packet&&) {});
  net.setReceiver(2, [](Packet&&) {});
  for (std::uint64_t i = 0; i < 20; ++i) {
    Packet p = makeData(0, 1, 100 + 37 * (i % 5));
    p.msgSeq = i;
    net.send(std::move(p));
  }
  eng.run();
  ASSERT_EQ(seqs.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(TreeTopologyTest, CrossLeafPaysTrunkAndRootCosts) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  np.nodesPerSwitch = 2;  // leaves {0,1} and {2,3}
  np.link.bandwidthMBps = 100.0;
  np.link.propagation = sim::usec(1);
  np.link.headerBytes = 0;
  np.trunk = np.link;
  np.switchLatency = sim::usec(2);
  np.rootSwitchLatency = sim::usec(3);
  Network net(eng, np);
  sim::SimTime local = 0;
  sim::SimTime remote = 0;
  for (NodeId n = 0; n < 4; ++n) {
    net.setReceiver(n, [&, n](Packet&&) {
      (n == 1 ? local : remote) = eng.now();
    });
  }
  net.send(makeData(0, 1, 100));  // same leaf
  eng.run();
  // up(1us ser + 1us prop) + leaf(2us) + down(1+1) = 6us.
  EXPECT_EQ(local, sim::usec(6));

  // Second send departs at t=6 (after run() drained the first).
  net.send(makeData(0, 2, 100));  // cross leaf
  eng.run();
  // Full cross-leaf path: up(2) + leaf(2) + trunkUp(2) + root(3) +
  // trunkDown(2) + leaf(2) + down(2) = 15 us.
  EXPECT_EQ(remote - local, sim::usec(15));
  EXPECT_EQ(net.packetsViaRoot(), 1u);
  EXPECT_EQ(net.leafOf(0), 0u);
  EXPECT_EQ(net.leafOf(3), 1u);
}

TEST(TreeTopologyTest, SharedTrunkSerializesCrossLeafFlows) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  np.nodesPerSwitch = 2;
  np.link.bandwidthMBps = 100.0;
  np.link.headerBytes = 0;
  np.trunk = np.link;
  Network net(eng, np);
  std::vector<sim::SimTime> arrivals;
  for (NodeId n = 0; n < 4; ++n) {
    net.setReceiver(n, [&](Packet&&) { arrivals.push_back(eng.now()); });
  }
  // Two flows from the same leaf to the other leaf share trunkUp[0]:
  // their frames serialize there even though host uplinks are distinct.
  net.send(makeData(0, 2, 1000));  // 10 us serialization per hop
  net.send(makeData(1, 3, 1000));
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second arrival is a full trunk serialization later, not parallel.
  EXPECT_GE(arrivals[1] - arrivals[0], sim::usec(10));
}

TEST(TreeTopologyTest, EndToEndViplAcrossLeaves) {
  // A full VIPL ping across the root switch (via the suite Cluster).
  // Placed here to keep the topology feature self-contained.
  SUCCEED();  // covered by ClusterTreeTopology in test_vibe_suite.cpp
}

TEST(TreeTopologyTest, WireSpansTileThePathWithPerHopByteCounts) {
  // Regression for the emitSwitchSpan attribution bug: with unequal
  // host/trunk headerBytes, every switch hop must be sized with the bytes
  // its *ingress* wire carried, not the host-link constant — and the
  // seven Wire spans (4 links + 3 switch hops) must exactly tile the
  // end-to-end wire interval.
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  np.nodesPerSwitch = 2;
  np.link.bandwidthMBps = 100.0;  // 10 ns/byte
  np.link.propagation = sim::usec(1);
  np.link.headerBytes = 8;
  np.trunk = np.link;
  np.trunk.propagation = sim::usec(2);
  np.trunk.headerBytes = 40;  // trunk frames carry a bigger header
  np.switchLatency = sim::usec(2);
  np.rootSwitchLatency = sim::usec(3);
  Network net(eng, np);
  obs::SpanProfiler spans;
  spans.setKeepEvents(true);
  net.setSpanProfiler(&spans);
  sim::SimTime arrival = -1;
  for (NodeId n = 0; n < 4; ++n) {
    net.setReceiver(n, [&, n](Packet&&) {
      if (n == 2) arrival = eng.now();
    });
  }
  net.send(makeData(0, 2, 192));  // host wire 200 B, trunk wire 232 B
  eng.run();

  // Path: up0 (2+1 us), leaf hop (2), trunkUp0 (2.32+2), root (3),
  // trunkDown1 (2.32+2), leaf hop (2), down2 (2+1) = 21.64 us.
  EXPECT_EQ(arrival, sim::nsec(21640));
  const auto& ev = spans.events();
  ASSERT_EQ(ev.size(), 7u);
  const std::uint64_t wantBytes[7] = {200, 200, 232, 232, 232, 232, 200};
  sim::SimTime cursor = 0;
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(ev[i].stage, obs::Stage::Wire) << "span " << i;
    EXPECT_EQ(ev[i].begin, cursor) << "span " << i << " does not tile";
    EXPECT_EQ(ev[i].bytes, wantBytes[i]) << "span " << i;
    cursor = ev[i].end;
  }
  EXPECT_EQ(cursor, arrival);
}

TEST(TreeTopologyTest, TrunkAccessorsExposeSharedLinksForFaults) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  np.nodesPerSwitch = 2;
  np.trunk = np.link;
  Network net(eng, np);
  ASSERT_EQ(net.trunkCount(), 2u);
  EXPECT_EQ(net.trunkUp(0).name(), "trunkUp0");
  EXPECT_EQ(net.trunkDown(1).name(), "trunkDown1");
  EXPECT_THROW(net.trunkUp(2), sim::SimError);
  EXPECT_THROW(net.trunkDown(2), sim::SimError);

  // A loss window armed on the shared trunk hits cross-leaf traffic but
  // leaves same-leaf traffic untouched.
  net.trunkUp(0).scheduleLossWindow(0, sim::kSecond, 1.0);
  int delivered = 0;
  for (NodeId n = 0; n < 4; ++n) {
    net.setReceiver(n, [&](Packet&&) { ++delivered; });
  }
  net.send(makeData(0, 1, 64));  // same leaf: unaffected
  net.send(makeData(0, 2, 64));  // cross leaf: dies on trunkUp0
  eng.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.trunkUp(0).framesDropped(), 1u);
  EXPECT_EQ(net.framesDropped(), 1u);
}

TEST(NetworkTest, StarHasNoTrunks) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 2;
  Network net(eng, np);
  EXPECT_EQ(net.trunkCount(), 0u);
  EXPECT_THROW(net.trunkUp(0), sim::SimError);
  EXPECT_THROW(net.trunkDown(0), sim::SimError);
}

TEST(NetworkTest, LeafOfRejectsOutOfRangeNodeIds) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  np.nodesPerSwitch = 2;
  np.trunk = np.link;
  Network tree(eng, np);
  EXPECT_EQ(tree.leafOf(3), 1u);
  EXPECT_THROW(tree.leafOf(4), sim::SimError);

  sim::Engine eng2;
  NetworkParams star;
  star.nodes = 2;
  Network flat(eng2, star);
  EXPECT_EQ(flat.leafOf(1), 0u);
  EXPECT_THROW(flat.leafOf(2), sim::SimError);
}

// ---------------------------------------------------------------------------
// k-ary fat-tree
// ---------------------------------------------------------------------------

NetworkParams fatTreeParams(std::uint32_t k, std::uint32_t nodes) {
  NetworkParams np;
  np.nodes = nodes;
  np.fatTreeK = k;
  np.link.bandwidthMBps = 100.0;
  np.link.headerBytes = 0;
  np.trunk = np.link;
  return np;
}

TEST(FatTreeTest, RejectsBadSpecs) {
  sim::Engine eng;
  EXPECT_THROW(Network(eng, fatTreeParams(3, 4)), sim::SimError);   // odd k
  EXPECT_THROW(Network(eng, fatTreeParams(4, 17)), sim::SimError);  // > k^3/4
}

TEST(FatTreeTest, DeliversAllPairsAtFullPopulation) {
  sim::Engine eng;
  Network net(eng, fatTreeParams(4, 16));
  std::vector<int> got(16, 0);
  for (NodeId n = 0; n < 16; ++n) {
    net.setReceiver(n, [&got, n](Packet&&) { ++got[n]; });
  }
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s != d) net.send(makeData(s, d, 32));
    }
  }
  eng.run();
  for (NodeId n = 0; n < 16; ++n) EXPECT_EQ(got[n], 15) << "node " << n;
  EXPECT_EQ(net.framesDropped(), 0u);
  // Every packet was forwarded once by its ingress edge switch.
  EXPECT_EQ(net.packetsForwarded(), 16u * 15u);
}

TEST(FatTreeTest, EcmpSpreadsDistinctFlowsAcrossCores) {
  sim::Engine eng;
  Network net(eng, fatTreeParams(4, 16));
  int delivered = 0;
  for (NodeId n = 0; n < 16; ++n) {
    net.setReceiver(n, [&](Packet&&) { ++delivered; });
  }
  // 16 distinct flows (by srcVi) between the same cross-pod host pair:
  // the flow hash must not collapse them all onto one core.
  for (std::uint32_t vi = 0; vi < 16; ++vi) {
    Packet p = makeData(0, 12, 64);
    p.srcVi = vi;
    net.send(std::move(p));
  }
  eng.run();
  EXPECT_EQ(delivered, 16);
  EXPECT_EQ(net.packetsViaRoot(), 16u);  // every flow crossed a core
  int coresUsed = 0;
  for (const auto& sw : net.topology().switches()) {
    if (sw->tier() == SwitchTier::Core && sw->packetsForwarded() > 0) {
      ++coresUsed;
    }
  }
  EXPECT_GE(coresUsed, 2) << "ECMP hashed every flow onto one core";
}

TEST(FatTreeTest, OneFlowStaysOnOnePathInOrder) {
  sim::Engine eng;
  Network net(eng, fatTreeParams(4, 16));
  std::vector<std::uint64_t> seqs;
  for (NodeId n = 0; n < 16; ++n) {
    net.setReceiver(n, [&, n](Packet&& p) {
      if (n == 12) seqs.push_back(p.msgSeq);
    });
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    Packet p = makeData(0, 12, 100 + 53 * (i % 4));
    p.msgSeq = i;
    net.send(std::move(p));
  }
  eng.run();
  ASSERT_EQ(seqs.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(seqs[i], i);
  // One flow, one path: exactly one core saw traffic.
  int coresUsed = 0;
  for (const auto& sw : net.topology().switches()) {
    if (sw->tier() == SwitchTier::Core && sw->packetsForwarded() > 0) {
      ++coresUsed;
    }
  }
  EXPECT_EQ(coresUsed, 1);
}

TEST(FatTreeTest, FiniteBuffersTailDropUnderIncast) {
  auto run = [](std::uint32_t bufferFrames) {
    sim::Engine eng;
    NetworkParams np = fatTreeParams(4, 16);
    np.switchBufferFrames = bufferFrames;
    Network net(eng, np);
    int delivered = 0;
    for (NodeId n = 0; n < 16; ++n) {
      net.setReceiver(n, [&](Packet&&) { ++delivered; });
    }
    // 7 hosts blast 4 back-to-back frames each at node 0: the edge
    // switch's single down port cannot drain 28 x 10 us frames.
    for (NodeId s = 1; s < 8; ++s) {
      for (int i = 0; i < 4; ++i) net.send(makeData(s, 0, 1000));
    }
    eng.run();
    return std::pair<int, std::uint64_t>(delivered,
                                         net.switchBufferDrops());
  };

  const auto unbounded = run(0);
  EXPECT_EQ(unbounded.first, 28);      // legacy: everything queues
  EXPECT_EQ(unbounded.second, 0u);

  const auto bounded = run(2);
  EXPECT_GT(bounded.second, 0u);       // tail drops happened
  EXPECT_EQ(bounded.first + static_cast<int>(bounded.second), 28);

  // Determinism: the same spec drops the same frames.
  const auto again = run(2);
  EXPECT_EQ(again.first, bounded.first);
  EXPECT_EQ(again.second, bounded.second);
}

TEST(FatTreeTest, BufferOccupancyStatsTrackBackpressure) {
  sim::Engine eng;
  NetworkParams np = fatTreeParams(4, 16);
  np.switchBufferFrames = 3;
  Network net(eng, np);
  int delivered = 0;
  for (NodeId n = 0; n < 16; ++n) {
    net.setReceiver(n, [&](Packet&&) { ++delivered; });
  }
  for (NodeId s = 1; s < 4; ++s) {
    for (int i = 0; i < 3; ++i) net.send(makeData(s, 0, 500));
  }
  eng.run();
  // 9 frames into one down port with room for 3: some queued behind
  // others (backpressure counter), the watermark never exceeds the cap.
  EXPECT_LE(net.maxSwitchQueueDepth(), 3u);
  std::uint64_t queued = 0;
  for (const auto& sw : net.topology().switches()) {
    queued += sw->framesQueued();
  }
  EXPECT_GT(queued, 0u);
}

// ---------------------------------------------------------------------------
// Topology accessor bounds guards (the Network::leafOf contract): every
// index-based accessor throws SimError — never a raw std::out_of_range —
// and names the accessor in the message.
// ---------------------------------------------------------------------------

void expectGuarded(const std::function<void()>& call, const char* name) {
  try {
    call();
    FAIL() << name << " accepted an out-of-range index";
  } catch (const sim::SimError& e) {
    EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
        << name << " threw without naming itself: " << e.what();
  } catch (const std::exception& e) {
    FAIL() << name << " leaked a non-SimError exception: " << e.what();
  }
}

TEST(TopologyGuardTest, StarAccessorsRejectOutOfRange) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 3;
  Network net(eng, np);
  Topology& topo = net.topology();
  EXPECT_NO_THROW(topo.hostUplink(2));
  EXPECT_NO_THROW(topo.hostDownlink(2));
  expectGuarded([&] { topo.hostUplink(3); }, "Topology::hostUplink");
  expectGuarded([&] { topo.hostDownlink(3); }, "Topology::hostDownlink");
  // A star has no trunks or fabric links at all.
  expectGuarded([&] { topo.trunkUp(0); }, "Topology::trunkUp");
  expectGuarded([&] { topo.trunkDown(0); }, "Topology::trunkDown");
  expectGuarded([&] { topo.fabricLink(0); }, "Topology::fabricLink");
}

TEST(TopologyGuardTest, TreeAndFatTreeAccessorsRejectOutOfRange) {
  sim::Engine eng;
  NetworkParams np;
  np.nodes = 4;
  np.nodesPerSwitch = 2;
  np.trunk = np.link;
  Network tree(eng, np);
  Topology& ttopo = tree.topology();
  EXPECT_NO_THROW(ttopo.trunkUp(1));
  EXPECT_NO_THROW(ttopo.trunkDown(1));
  expectGuarded([&] { ttopo.trunkUp(2); }, "Topology::trunkUp");
  expectGuarded([&] { ttopo.trunkDown(2); }, "Topology::trunkDown");

  sim::Engine eng2;
  Network fat(eng2, fatTreeParams(4, 16));
  Topology& ftopo = fat.topology();
  ASSERT_GT(ftopo.fabricLinkCount(), 0u);
  EXPECT_NO_THROW(ftopo.fabricLink(ftopo.fabricLinkCount() - 1));
  expectGuarded([&] { ftopo.fabricLink(ftopo.fabricLinkCount()); },
                "Topology::fabricLink");
}

TEST(TopologyGuardTest, SwitchPortAndRouteRejectOutOfRange) {
  sim::Engine eng;
  Network net(eng, fatTreeParams(4, 16));
  const Switch& edge = *net.topology().switches().front();
  ASSERT_GT(edge.portCount(), 0u);
  EXPECT_NO_THROW(edge.port(edge.portCount() - 1));
  expectGuarded([&] { edge.port(edge.portCount()); }, "Switch::port");
  Switch& mut = *net.topology().switches().front();
  expectGuarded([&] { mut.setHostRoute(16, 0); }, "Switch::setHostRoute");
  expectGuarded([&] { mut.setHostRoute(0, mut.portCount()); },
                "Switch::setHostRoute");
}

// ---------------------------------------------------------------------------
// PDES domain partitioning (fabric/domain.hpp)
// ---------------------------------------------------------------------------

TEST(DomainPartitionTest, StarIsOneDomain) {
  TopologySpec spec;
  spec.kind = TopologyKind::Star;
  spec.nodes = 5;
  const DomainPartition part = DomainPartition::fromSpec(spec);
  EXPECT_EQ(part.domains, 1u);
  for (std::uint32_t n = 0; n < 5; ++n) EXPECT_EQ(part.domainOf(n), 0u);
  EXPECT_THROW(part.domainOf(5), sim::SimError);
  EXPECT_EQ(crossDomainLookahead(spec), 0);
  EXPECT_EQ(pathTier(spec, 0, 4), PathTier::SameEdge);
}

TEST(DomainPartitionTest, TreeGroupsByLeaf) {
  TopologySpec spec;
  spec.kind = TopologyKind::TwoLevelTree;
  spec.nodes = 7;
  spec.nodesPerSwitch = 3;
  const DomainPartition part = DomainPartition::fromSpec(spec);
  EXPECT_EQ(part.domains, 3u);  // leaves {0,1,2}, {3,4,5}, {6}
  EXPECT_EQ(part.domainOf(2), 0u);
  EXPECT_EQ(part.domainOf(3), 1u);
  EXPECT_EQ(part.domainOf(6), 2u);
  EXPECT_EQ(pathTier(spec, 0, 2), PathTier::SameEdge);
  EXPECT_EQ(pathTier(spec, 0, 6), PathTier::SamePod);
  spec.nodesPerSwitch = 0;
  EXPECT_THROW(DomainPartition::fromSpec(spec), sim::SimError);
}

TEST(DomainPartitionTest, FatTreeGroupsByEdgeSwitch) {
  TopologySpec spec;
  spec.kind = TopologyKind::FatTree;
  spec.nodes = 16;
  spec.fatTreeK = 4;
  const DomainPartition part = DomainPartition::fromSpec(spec);
  EXPECT_EQ(part.domains, 8u);  // k/2 = 2 hosts per edge switch
  EXPECT_EQ(part.domainOf(0), part.domainOf(1));
  EXPECT_NE(part.domainOf(1), part.domainOf(2));
  // Tiers: same edge, same pod (hosts 0..3), cross pod.
  EXPECT_EQ(pathTier(spec, 0, 1), PathTier::SameEdge);
  EXPECT_EQ(pathTier(spec, 0, 3), PathTier::SamePod);
  EXPECT_EQ(pathTier(spec, 0, 4), PathTier::CrossPod);
  EXPECT_THROW(pathTier(spec, 0, 16), sim::SimError);

  TopologySpec bad = spec;
  bad.fatTreeK = 3;
  EXPECT_THROW(DomainPartition::fromSpec(bad), sim::SimError);
  bad = spec;
  bad.nodes = 17;
  EXPECT_THROW(DomainPartition::fromSpec(bad), sim::SimError);
}

TEST(DomainPartitionTest, LookaheadIsHeaderHopPlusCoreLatency) {
  TopologySpec spec;
  spec.kind = TopologyKind::FatTree;
  spec.nodes = 16;
  spec.fatTreeK = 4;
  spec.fabricLink.bandwidthMBps = 100.0;
  spec.fabricLink.headerBytes = 40;
  spec.fabricLink.propagation = 250;
  spec.coreLatency = 600;
  const sim::Duration hop =
      sim::transferTime(40, 100.0) + 250;  // serialize header + propagate
  EXPECT_EQ(crossDomainLookahead(spec), 2 * hop + 600);
  EXPECT_GT(crossDomainLookahead(spec), 0);
}

}  // namespace
}  // namespace vibe::fabric
