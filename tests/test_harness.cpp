// Property tests for the parallel sweep harness: whatever VIBE_JOBS says,
// a sweep's observable output — result slots, rendered tables, JSON, CSV,
// composed trace digests, merged metrics — must be byte-identical to the
// serial run. These tests drive the harness with cheap deterministic
// point bodies; the full-simulation version of the same property lives in
// test_determinism (digests) and test_golden (every bench table).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "simcore/prng.hpp"
#include "simcore/trace.hpp"
#include "vibe/results.hpp"

namespace vibe {
namespace {

/// Sets VIBE_JOBS for one scope; restores to unset (the tests below pass
/// explicit SweepOptions::jobs wherever the env path is not the point).
struct ScopedJobs {
  explicit ScopedJobs(const char* v) {
    if (v != nullptr) {
      setenv("VIBE_JOBS", v, 1);
    } else {
      unsetenv("VIBE_JOBS");
    }
  }
  ~ScopedJobs() { unsetenv("VIBE_JOBS"); }
};

/// A deterministic stand-in for one simulation point: a seeded PRNG
/// stream reduced to a double and a digest-sized integer.
struct PointResult {
  double value = 0;
  std::uint64_t digest = 0;
};

PointResult pointResult(std::uint64_t seed) {
  sim::Xoshiro256 rng(seed, "harness-test");
  PointResult r;
  r.digest = sim::Tracer::kDigestSeed;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t draw = rng.below(1'000'000);
    r.value += static_cast<double>(draw) * 1e-3;
    r.digest = sim::Tracer::combineDigest(r.digest, draw);
  }
  return r;
}

const std::vector<unsigned> kJobVariants = {1, 2, 7, harness::jobCount()};

TEST(JobCount, ReadsEnvFallsBackToHardwareConcurrency) {
  {
    ScopedJobs j("3");
    EXPECT_EQ(harness::jobCount(), 3u);
  }
  {
    ScopedJobs j("1");
    EXPECT_EQ(harness::jobCount(), 1u);
  }
  // Zero, negative, and non-numeric values fall back to the hardware
  // default, which is always at least 1.
  for (const char* bogus : {"0", "-4", "lots", ""}) {
    ScopedJobs j(bogus);
    EXPECT_GE(harness::jobCount(), 1u) << "VIBE_JOBS=" << bogus;
  }
  {
    ScopedJobs j(nullptr);
    EXPECT_GE(harness::jobCount(), 1u);
  }
}

TEST(SweepRunner, ResultsLandInIndexOrderAtAnyJobCount) {
  constexpr std::size_t kPoints = 100;
  for (unsigned jobs : kJobVariants) {
    harness::SweepOptions opts;
    opts.jobs = jobs;
    const auto out = harness::runSweep(
        kPoints,
        [](harness::PointEnv& env) { return env.index * env.index; }, opts);
    ASSERT_EQ(out.size(), kPoints);
    for (std::size_t i = 0; i < kPoints; ++i) {
      EXPECT_EQ(out[i], i * i) << "jobs=" << jobs << " index=" << i;
    }
  }
}

TEST(SweepRunner, VoidBodyRunsEveryPointExactlyOnce) {
  constexpr std::size_t kPoints = 64;
  for (unsigned jobs : kJobVariants) {
    std::vector<std::atomic<int>> hits(kPoints);
    harness::SweepOptions opts;
    opts.jobs = jobs;
    harness::runSweep(
        kPoints,
        [&hits](harness::PointEnv& env) {
          hits[env.index].fetch_add(1, std::memory_order_relaxed);
        },
        opts);
    for (std::size_t i = 0; i < kPoints; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " index=" << i;
    }
  }
}

TEST(SweepRunner, JobsClampToPointCountAndZeroPointsAreFine) {
  harness::SweepOptions opts;
  opts.jobs = 16;  // more workers than points
  const auto out = harness::runSweep(
      3, [](harness::PointEnv& env) { return env.index + 1; }, opts);
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 2, 3}));
  harness::runSweep(
      0, [](harness::PointEnv&) { FAIL() << "no points to run"; }, opts);
}

TEST(SweepRunner, EnvVariableSelectsWorkerCount) {
  ScopedJobs j("7");
  const auto out = harness::runSweep(
      32, [](harness::PointEnv& env) { return env.index; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

// The sweep finishes all points even when one throws, then rethrows the
// lowest-indexed exception — so failure reports are schedule-independent
// too.
TEST(SweepRunner, LowestIndexedExceptionWinsAtAnyJobCount) {
  for (unsigned jobs : kJobVariants) {
    harness::SweepOptions opts;
    opts.jobs = jobs;
    std::atomic<int> completed{0};
    try {
      harness::runSweep(
          64,
          [&completed](harness::PointEnv& env) {
            if (env.index == 13 || env.index == 57) {
              throw std::runtime_error("point " + std::to_string(env.index));
            }
            completed.fetch_add(1, std::memory_order_relaxed);
          },
          opts);
      FAIL() << "sweep should rethrow (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "point 13") << "jobs=" << jobs;
    }
    EXPECT_EQ(completed.load(), 62) << "jobs=" << jobs;
  }
}

// Satellite property from the issue: the same 8-seed sweep at
// VIBE_JOBS ∈ {1, 2, 7, hw} renders identical table text, CSV, JSON, and
// composes the identical sweep digest.
TEST(SweepRunner, TablesJsonAndDigestsIdenticalAcrossJobCounts) {
  constexpr std::size_t kSeeds = 8;
  struct Rendered {
    std::string text;
    std::string csv;
    std::string json;
    std::uint64_t digest = 0;
  };
  auto render = [&](unsigned jobs) {
    harness::SweepOptions opts;
    opts.jobs = jobs;
    const auto points = harness::runSweep(
        kSeeds,
        [](harness::PointEnv& env) {
          return pointResult(9000 + env.index * 31);
        },
        opts);
    suite::ResultTable table("harness sweep property", {"seed", "value"});
    Rendered r;
    r.digest = sim::Tracer::kDigestSeed;
    for (std::size_t i = 0; i < kSeeds; ++i) {
      table.addRow({static_cast<double>(i), points[i].value});
      r.digest = sim::Tracer::combineDigest(r.digest, points[i].digest);
    }
    r.text = table.renderText(2);
    r.csv = table.renderCsv();
    r.json = table.renderJson();
    return r;
  };
  const Rendered serial = render(1);
  for (unsigned jobs : kJobVariants) {
    const Rendered parallel = render(jobs);
    EXPECT_EQ(serial.text, parallel.text) << "jobs=" << jobs;
    EXPECT_EQ(serial.csv, parallel.csv) << "jobs=" << jobs;
    EXPECT_EQ(serial.json, parallel.json) << "jobs=" << jobs;
    EXPECT_EQ(serial.digest, parallel.digest) << "jobs=" << jobs;
  }
}

// Per-point registries merged in index order must reproduce the registry
// a serial run writing into one shared registry would have produced:
// counters and histograms are commutative, and gauges take the last
// write, which index order pins to point n-1.
TEST(SweepRunner, MergedMetricsMatchSerialRegistry) {
  constexpr std::size_t kPoints = 24;
  auto publish = [](obs::MetricsRegistry& m, std::size_t i) {
    m.counter("sweep/points").add(1);
    m.counter("sweep/bytes").add((i + 1) * 64);
    m.gauge("sweep/last_index").set(static_cast<double>(i));
    m.histogram("sweep/latency_ns").add(static_cast<std::int64_t>(i * 1000));
  };

  obs::MetricsRegistry serial;
  for (std::size_t i = 0; i < kPoints; ++i) publish(serial, i);

  for (unsigned jobs : kJobVariants) {
    obs::MetricsRegistry merged;
    harness::SweepOptions opts;
    opts.jobs = jobs;
    opts.mergeInto = &merged;
    harness::runSweep(
        kPoints,
        [&publish](harness::PointEnv& env) {
          ASSERT_NE(env.metrics, nullptr);
          publish(*env.metrics, env.index);
        },
        opts);
    EXPECT_EQ(serial.renderText(), merged.renderText()) << "jobs=" << jobs;
    EXPECT_EQ(merged.gauge("sweep/last_index").value(),
              static_cast<double>(kPoints - 1))
        << "jobs=" << jobs;
  }
}

// Without mergeInto, points get no registry — publishing would be a bug.
TEST(SweepRunner, NoRegistryUnlessMergeRequested) {
  harness::runSweep(4, [](harness::PointEnv& env) {
    EXPECT_EQ(env.metrics, nullptr);
  });
}

}  // namespace
}  // namespace vibe
