// Determinism tests: the simulator is a pure function of its seed. The
// same ClusterConfig::seed must reproduce an identical event history —
// verified byte-for-byte via the tracer's running FNV-1a digest — across
// all NIC profiles, and different seeds must actually change the history
// (the digest is sensitive enough to see a single reordered drop).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "fabric/pdes_traffic.hpp"
#include "harness/sweep.hpp"
#include "nic/profiles.hpp"
#include "simcore/trace.hpp"
#include "test_env.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using vipl::PendingConn;
using vipl::Provider;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;

constexpr sim::Duration kTimeout = sim::kSecond * 10;
constexpr std::uint64_t kDisc = 5;

struct Buf {
  mem::VirtAddr va = 0;
  mem::MemHandle handle = 0;
};

Buf makeBuf(Provider& nic, mem::PtagId ptag, std::uint64_t len) {
  Buf b;
  b.va = nic.memory().alloc(len, mem::kPageSize);
  vipl::VipMemAttributes ma;
  ma.ptag = ptag;
  EXPECT_EQ(vipl::VipRegisterMem(nic, b.va, len, ma, b.handle),
            VipResult::VIP_SUCCESS);
  return b;
}

struct RunOutcome {
  std::uint64_t digest = 0;
  sim::SimTime endTime = 0;
  std::uint64_t retransmits = 0;
};

/// A lossy ping-pong whose retransmission pattern depends on every PRNG
/// draw: any divergence between two runs of the same seed shows up in the
/// digest, and different seeds drop different frames.
/// `simShards` 0 = the classic serial engine; >= 1 hosts the whole stack
/// on the sharded PDES engine, each node on its own leaf-switch domain
/// of a two-level tree so every frame crosses a domain boundary.
RunOutcome lossyPingPong(const std::string& profile, std::uint64_t seed,
                         std::uint32_t simShards = 0) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName(profile);
  cfg.seed = seed;
  cfg.lossRate = 0.08;
  if (simShards > 0) {
    cfg.nodesPerSwitch = 1;  // leaf per node: 3 PDES domains
    cfg.simShards = simShards;
  }
  Cluster cluster(cfg);

  sim::Tracer tracer;
  tracer.enableAll();
  cluster.setTracer(&tracer);

  constexpr int kRounds = 40;
  constexpr std::size_t kBytes = 2048;

  auto node0 = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf tx = makeBuf(nic, ptag, kBytes);
    Buf rx = makeBuf(nic, ptag, kRounds * kBytes);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kRounds; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(rx.va + i * kBytes, rx.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    for (int i = 0; i < kRounds; ++i) {
      VipDescriptor d = VipDescriptor::send(tx.va, tx.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    }
  };

  auto node1 = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf tx = makeBuf(nic, ptag, kBytes);
    Buf rx = makeBuf(nic, ptag, kRounds * kBytes);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < kRounds; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(rx.va + i * kBytes, rx.handle, kBytes)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs[i].get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
    for (int i = 0; i < kRounds; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      VipDescriptor d = VipDescriptor::send(tx.va, tx.handle, kBytes);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    }
  };

  cluster.run({node0, node1});

  RunOutcome out;
  out.digest = tracer.digest();
  out.endTime = cluster.now();
  out.retransmits = cluster.node(0).device().stats().retransmits +
                    cluster.node(1).device().stats().retransmits;
  return out;
}

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Profiles, DeterminismTest,
                         ::testing::Values("mvia", "bvia", "clan"),
                         [](const auto& pi) { return pi.param; });

TEST_P(DeterminismTest, SameSeedReplaysByteIdentically) {
  const std::string profile = GetParam();
  const RunOutcome a = lossyPingPong(profile, 2024);
  const RunOutcome b = lossyPingPong(profile, 2024);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.endTime, b.endTime);
  EXPECT_EQ(a.retransmits, b.retransmits);
  // 8% loss over ~160 data frames: the run must actually have exercised
  // the retransmission machinery for the digest check to mean anything.
  EXPECT_GT(a.retransmits, 0u);
}

TEST_P(DeterminismTest, DifferentSeedsDiverge) {
  const std::string profile = GetParam();
  const RunOutcome a = lossyPingPong(profile, 2024);
  const RunOutcome b = lossyPingPong(profile, 2025);
  EXPECT_NE(a.digest, b.digest);
}

// A seed sweep run through the parallel harness composes the same
// sweep-level digest (per-shard digests folded in index order) at any
// worker count — the property every harness-ported bench relies on.
TEST_P(DeterminismTest, SeedSweepComposesDigestIndependentOfJobs) {
  const std::string profile = GetParam();
  auto sweepDigest = [&](unsigned jobs) {
    harness::SweepOptions opts;
    opts.jobs = jobs;
    const auto outs = harness::runSweep(
        8,
        [&](harness::PointEnv& env) {
          return lossyPingPong(profile, 3000 + env.index * 17);
        },
        opts);
    std::uint64_t acc = sim::Tracer::kDigestSeed;
    for (const RunOutcome& o : outs) {
      acc = sim::Tracer::combineDigest(acc, o.digest);
    }
    return acc;
  };
  const std::uint64_t serial = sweepDigest(1);
  EXPECT_EQ(serial, sweepDigest(2));
  EXPECT_EQ(serial, sweepDigest(harness::jobCount()));
}

// --- VIBE_SIM_SHARDS axis -------------------------------------------------
//
// The two parallelism dimensions must not interact: VIBE_JOBS fans out
// independent sweep points, VIBE_SIM_SHARDS threads a single simulation.
// Digests must be byte-identical across the full {shards} x {jobs}
// matrix — for the serial VIA stack (which ignores shards entirely) and
// for the sharded PDES workload (whose digest is shard-invariant by the
// (time, srcDomain, srcSeq) key contract).

using vibe::testing::ScopedEnv;

TEST(ShardsAxis, SerialStackDigestIgnoresSimShards) {
  // The full VIA stack runs on the serial Engine; flipping the PDES
  // shard count must not move a single byte of its trace digest.
  const RunOutcome base = [&] {
    ScopedEnv env("VIBE_SIM_SHARDS", "1");
    return lossyPingPong("clan", 7331);
  }();
  constexpr const char* kShards[] = {"2", "7", nullptr};
  for (const char* shards : kShards) {
    ScopedEnv env("VIBE_SIM_SHARDS", shards);
    const RunOutcome got = lossyPingPong("clan", 7331);
    EXPECT_EQ(got.digest, base.digest)
        << "VIBE_SIM_SHARDS=" << (shards ? shards : "<unset>");
    EXPECT_EQ(got.endTime, base.endTime);
    EXPECT_EQ(got.retransmits, base.retransmits);
  }
}

TEST(ShardsAxis, PdesSweepDigestInvariantAcrossShardsTimesJobs) {
  // A seed sweep of sharded PDES simulations, swept through the jobs
  // harness: every (VIBE_SIM_SHARDS, jobs) cell folds the identical
  // digest. cfg.shards = 0 so each simulation picks the env value up —
  // the exact path a harness-ported PDES bench uses.
  auto sweepDigest = [&](const char* shards, unsigned jobs) {
    ScopedEnv env("VIBE_SIM_SHARDS", shards);
    harness::SweepOptions opts;
    opts.jobs = jobs;
    const auto digests = harness::runSweep(
        6,
        [&](harness::PointEnv& env2) {
          fabric::PdesTrafficConfig cfg;
          cfg.fatTreeK = 4;
          cfg.rounds = 4;
          cfg.computeIters = 4;
          cfg.seed = 5000 + env2.index * 13;
          cfg.shards = 0;
          return fabric::runPdesTraffic(cfg).digest;
        },
        opts);
    std::uint64_t acc = sim::Tracer::kDigestSeed;
    for (std::uint64_t d : digests) acc = sim::Tracer::combineDigest(acc, d);
    return acc;
  };
  const std::uint64_t base = sweepDigest("1", 1);
  constexpr const char* kShards[] = {"1", "2", "7", nullptr};
  for (const char* shards : kShards) {
    for (unsigned jobs : {1u, 4u}) {
      EXPECT_EQ(sweepDigest(shards, jobs), base)
          << "VIBE_SIM_SHARDS=" << (shards ? shards : "<unset>")
          << " jobs=" << jobs;
    }
  }
}

// --- the VIA stack hosted on the sharded engine ---------------------------

// The full reliability machinery (8% loss keeps the RTO timers firing)
// on a sharded Cluster: digest, end time, and retransmit count must not
// move with the worker shard count, and every shard count must replay a
// seed byte-for-byte. This is the in-sweep face of the deeper wall in
// test_pdes_stack.
TEST_P(DeterminismTest, ShardedStackDigestInvariantAcrossShardCounts) {
  const std::string profile = GetParam();
  const RunOutcome base = lossyPingPong(profile, 2024, /*simShards=*/1);
  EXPECT_GT(base.retransmits, 0u);
  const std::uint32_t counts[] = {1, 2, 7, harness::jobCount()};
  for (std::uint32_t shards : counts) {
    const RunOutcome got = lossyPingPong(profile, 2024, shards);
    EXPECT_EQ(got.digest, base.digest) << "shards=" << shards;
    EXPECT_EQ(got.endTime, base.endTime) << "shards=" << shards;
    EXPECT_EQ(got.retransmits, base.retransmits) << "shards=" << shards;
  }
}

// Sharded-Cluster seed sweep through the jobs harness: concurrent
// sharded simulations (each spinning its own worker pool) still fold
// the same sweep digest at any jobs count.
TEST(ShardedClusterAxis, SeedSweepComposesDigestIndependentOfJobs) {
  auto sweepDigest = [&](std::uint32_t simShards, unsigned jobs) {
    harness::SweepOptions opts;
    opts.jobs = jobs;
    const auto outs = harness::runSweep(
        6,
        [&](harness::PointEnv& env) {
          return lossyPingPong("clan", 6000 + env.index * 17, simShards);
        },
        opts);
    std::uint64_t acc = sim::Tracer::kDigestSeed;
    for (const RunOutcome& o : outs) {
      acc = sim::Tracer::combineDigest(acc, o.digest);
    }
    return acc;
  };
  const std::uint64_t base = sweepDigest(1, 1);
  EXPECT_EQ(base, sweepDigest(2, 1));
  EXPECT_EQ(base, sweepDigest(2, 4));
  EXPECT_EQ(base, sweepDigest(harness::jobCount(), 2));
}

}  // namespace
}  // namespace vibe
