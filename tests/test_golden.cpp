// Golden-table regression suite: every table bench is compiled into this
// binary (bench/*.cpp built with -DVIBE_BENCH_LIBRARY register their
// entry point instead of defining main) and re-run in-process, with
// stdout captured and diffed byte-for-byte against tests/golden/<name>.txt.
//
// Each bench runs across a (VIBE_JOBS x VIBE_SIM_SHARDS) matrix — jobs
// in {1, 4} (serial vs the sweep harness's thread pool) composed with
// sim shards in {1, 2, 7, hw} — so the suite pins three properties at
// once: the tables themselves (any change to simulated numbers or
// formatting must regenerate the goldens in the same commit), the
// harness guarantee that worker count never leaks into output, and the
// PDES guarantee that the within-simulation shard count never does
// either (the two parallelism dimensions must not interact).
//
// When VIBE_SIM_SHARDS is already set in the environment, the shards
// axis is pinned to that single value instead of the full sweep — the
// pdes-tsan CI job uses this to run the whole suite at 4 shards without
// quadrupling its size.
//
// Regenerate after an intentional table change with:
//   ./tests/test_golden --update-golden
// The goldens are captured with VIBE_JSON=1, so the schema-2 JSON blocks
// are under regression too; gbench_* binaries are wall-clock and are
// deliberately not part of this suite.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_registry.hpp"

namespace {

const std::string kGoldenDir = VIBE_GOLDEN_DIR;

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/// Runs a registered bench entry point with stdout redirected into a temp
/// file and returns everything it printed. printf-based output only, so
/// fd-level redirection (dup2) catches it all.
std::string captureBench(vibe::bench::BenchFn fn, int& rc) {
  const std::string tmp = "golden_capture.tmp";
  std::fflush(stdout);
  const int saved = dup(STDOUT_FILENO);
  const int fd = open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  EXPECT_GE(saved, 0);
  EXPECT_GE(fd, 0);
  dup2(fd, STDOUT_FILENO);
  close(fd);
  char arg0[] = "bench";
  char* argv[] = {arg0, nullptr};
  int argc = 1;
  rc = fn(argc, argv);
  std::fflush(stdout);
  dup2(saved, STDOUT_FILENO);
  close(saved);
  const std::string out = readFile(tmp);
  std::remove(tmp.c_str());
  return out;
}

/// First differing line between two blobs, for a failure message that
/// points at the change instead of dumping two whole tables.
std::string firstDiff(const std::string& want, const std::string& got) {
  std::istringstream w(want);
  std::istringstream g(got);
  std::string wl;
  std::string gl;
  int line = 0;
  while (true) {
    ++line;
    const bool haveW = static_cast<bool>(std::getline(w, wl));
    const bool haveG = static_cast<bool>(std::getline(g, gl));
    if (!haveW && !haveG) return "(identical?)";
    if (wl != gl || haveW != haveG) {
      std::ostringstream ss;
      ss << "line " << line << ":\n  golden: "
         << (haveW ? wl : std::string("<end of file>"))
         << "\n  actual: " << (haveG ? gl : std::string("<end of file>"));
      return ss.str();
    }
  }
}

/// The key skeleton of a BENCH_*.json file: every quoted string that is
/// followed by a colon, in order. Values are covered by the table goldens;
/// this pins the schema-2 shape consumers parse.
std::vector<std::string> jsonKeys(const std::string& text) {
  std::vector<std::string> keys;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    std::size_t after = end + 1;
    while (after < text.size() &&
           (text[after] == ' ' || text[after] == '\t')) {
      ++after;
    }
    if (after < text.size() && text[after] == ':') {
      keys.push_back(text.substr(pos + 1, end - pos - 1));
    }
    pos = end + 1;
  }
  return keys;
}

class GoldenTableTest : public ::testing::Test {
 public:
  GoldenTableTest(vibe::bench::BenchInfo info, unsigned jobs,
                  std::string shards, bool update)
      : info_(std::move(info)),
        jobs_(jobs),
        shards_(std::move(shards)),
        update_(update) {}

  void TestBody() override {
    setenv("VIBE_JOBS", std::to_string(jobs_).c_str(), 1);
    if (shards_.empty()) {
      unsetenv("VIBE_SIM_SHARDS");  // hardware default
    } else {
      setenv("VIBE_SIM_SHARDS", shards_.c_str(), 1);
    }
    int rc = -1;
    const std::string out = captureBench(info_.fn, rc);
    EXPECT_EQ(rc, 0) << info_.name << " returned nonzero";

    const std::string goldenPath = kGoldenDir + "/" + info_.name + ".txt";
    if (update_) {
      writeFile(goldenPath, out);
      updateJsonSkeleton();
      return;
    }
    const std::string want = readFile(goldenPath);
    ASSERT_FALSE(want.empty())
        << "missing golden " << goldenPath
        << " — run ./tests/test_golden --update-golden";
    EXPECT_EQ(want, out) << "bench " << info_.name << " at VIBE_JOBS="
                         << jobs_ << " VIBE_SIM_SHARDS="
                         << (shards_.empty() ? "<hw>" : shards_)
                         << " diverged from golden; first diff at "
                         << firstDiff(want, out)
                         << "\nIf the change is intentional, regenerate "
                            "with ./tests/test_golden --update-golden";
    checkJsonSkeleton();
  }

 private:
  /// Benches that write BENCH_<name>.json (into the cwd) additionally get
  /// their key skeleton pinned in tests/golden/BENCH_<name>.keys.
  std::string jsonPath() const { return "BENCH_" + info_.name + ".json"; }
  std::string skeletonPath() const {
    return kGoldenDir + "/BENCH_" + info_.name + ".keys";
  }

  void updateJsonSkeleton() {
    const std::string json = readFile(jsonPath());
    if (json.empty()) return;  // this bench does not emit a JSON file
    std::ostringstream ss;
    for (const std::string& k : jsonKeys(json)) ss << k << "\n";
    writeFile(skeletonPath(), ss.str());
  }

  void checkJsonSkeleton() {
    const std::string want = readFile(skeletonPath());
    if (want.empty()) return;  // no skeleton golden for this bench
    const std::string json = readFile(jsonPath());
    ASSERT_FALSE(json.empty()) << jsonPath() << " was not written";
    std::ostringstream ss;
    for (const std::string& k : jsonKeys(json)) ss << k << "\n";
    EXPECT_EQ(want, ss.str())
        << "key skeleton of " << jsonPath() << " changed; first diff at "
        << firstDiff(want, ss.str());
  }

  vibe::bench::BenchInfo info_;
  unsigned jobs_;
  std::string shards_;  // VIBE_SIM_SHARDS value; empty = unset (hardware)
  bool update_;
};

/// Shard-axis variants, as (env value, test-name label) pairs. An empty
/// env value means "unset" — let the PDES default to hardware_concurrency.
/// When the caller already exported VIBE_SIM_SHARDS the axis is pinned to
/// that single value (the pdes-tsan CI contract); otherwise it sweeps
/// serial, even, prime-and-ragged, and the hardware default.
std::vector<std::pair<std::string, std::string>> shardVariants(bool update) {
  if (update) return {{"1", ""}};
  if (const char* pre = std::getenv("VIBE_SIM_SHARDS"); pre && *pre) {
    std::string label = "pin";
    for (const char* p = pre; *p; ++p) {
      if (std::isalnum(static_cast<unsigned char>(*p))) label += *p;
    }
    return {{pre, "_shards" + label}};
  }
  return {{"1", "_shards1"},
          {"2", "_shards2"},
          {"7", "_shards7"},
          {"", "_shardshw"}};
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  bool update = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-golden") update = true;
  }

  // The goldens are captured with the JSON blocks on and everything else
  // at its default, so a stray environment doesn't shift the baseline.
  setenv("VIBE_JSON", "1", 1);
  unsetenv("VIBE_CSV");
  unsetenv("VIBE_STATS");
  unsetenv("VIBE_TRACE_OUT");
  unsetenv("VIBE_CHAOS_SEEDS");  // soak-only sweep, absent from goldens
  unsetenv("VIBE_FLIGHT_OUT");

  auto& registry = vibe::bench::benchRegistry();
  const auto shards = shardVariants(update);
  for (const auto& info : registry) {
    const std::vector<unsigned> jobVariants =
        update ? std::vector<unsigned>{1} : std::vector<unsigned>{1, 4};
    for (unsigned jobs : jobVariants) {
      for (const auto& [shardEnv, shardLabel] : shards) {
        const std::string name =
            info.name +
            (update ? "_update" : "_jobs" + std::to_string(jobs) + shardLabel);
        ::testing::RegisterTest(
            "GoldenTable", name.c_str(), nullptr, nullptr, __FILE__, __LINE__,
            [info, jobs, shardEnv = shardEnv, update]() -> ::testing::Test* {
              return new GoldenTableTest(info, jobs, shardEnv, update);
            });
      }
    }
  }
  return RUN_ALL_TESTS();
}
