// Coverage for the less-traveled public paths: NIC attribute queries per
// profile, CQ resize semantics, ptag lifecycle through the provider,
// listener timeouts, profile lookup, and small engine/process corners.
#include <gtest/gtest.h>

#include <stdexcept>

#include "nic/profiles.hpp"
#include "test_seed.hpp"
#include "upper/sockets/stream.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using vipl::Cq;
using vipl::Provider;
using vipl::Vi;
using vipl::VipResult;

ClusterConfig configFor(const std::string& name, std::uint32_t nodes = 2) {
  ClusterConfig c;
  c.profile = nic::profileByName(name);
  c.nodes = nodes;
  // Shift the pinned default seed by the run's base so VIBE_TEST_SEED
  // soaks these paths too, while default runs stay bit-identical.
  c.seed += vibe::testing::testRunSeed();
  return c;
}

TEST(ProfileTest, LookupKnowsAllShippedProfilesAndRejectsOthers) {
  for (const char* name : {"mvia", "bvia", "clan", "firmvia", "iba"}) {
    EXPECT_NO_THROW((void)nic::profileByName(name)) << name;
  }
  EXPECT_THROW((void)nic::profileByName("quadrics"), std::invalid_argument);
  EXPECT_THROW((void)nic::profileByName(""), std::invalid_argument);
}

TEST(ProfileTest, QueryNicReflectsProfileCapabilities) {
  struct Expectation {
    const char* name;
    bool rdmaWrite;
    bool rdmaRead;
    std::uint32_t mtu;
  };
  const Expectation table[] = {
      {"mvia", true, false, 1500},
      {"bvia", false, false, 2048},
      {"clan", true, false, 2048},
      {"iba", true, true, 2048},
  };
  for (const auto& e : table) {
    Cluster cluster(configFor(e.name, 1));
    auto program = [&](NodeEnv& env) {
      vipl::VipNicAttributes attrs;
      ASSERT_EQ(vipl::VipQueryNic(env.nic, attrs), VipResult::VIP_SUCCESS);
      EXPECT_EQ(attrs.rdmaWriteSupport, e.rdmaWrite) << e.name;
      EXPECT_EQ(attrs.rdmaReadSupport, e.rdmaRead) << e.name;
      EXPECT_EQ(attrs.mtu, e.mtu) << e.name;
      EXPECT_EQ(attrs.maxSegmentsPerDesc, 252) << e.name;
      EXPECT_FALSE(attrs.name.empty());
    };
    cluster.run({program});
  }
}

TEST(ProviderTest, CqResizeSemantics) {
  Cluster cluster(configFor("clan", 1));
  auto program = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    Cq* cq = nullptr;
    ASSERT_EQ(nic.createCq(4, cq), VipResult::VIP_SUCCESS);
    EXPECT_EQ(nic.resizeCq(cq, 16), VipResult::VIP_SUCCESS);
    EXPECT_EQ(cq->capacity(), 16u);
    EXPECT_EQ(nic.resizeCq(cq, 0), VipResult::VIP_INVALID_PARAMETER);
    EXPECT_EQ(nic.resizeCq(nullptr, 8), VipResult::VIP_INVALID_PARAMETER);
    EXPECT_EQ(nic.destroyCq(cq), VipResult::VIP_SUCCESS);
  };
  cluster.run({program});
}

TEST(ProviderTest, PtagLifecycleThroughTheProvider) {
  Cluster cluster(configFor("clan", 1));
  auto program = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    const mem::PtagId ptag = vipl::VipCreatePtag(nic);
    const mem::VirtAddr va = nic.memory().alloc(4096, mem::kPageSize);
    mem::MemHandle h = 0;
    ASSERT_EQ(vipl::VipRegisterMem(nic, va, 4096, {ptag, false, false}, h),
              VipResult::VIP_SUCCESS);
    // Busy ptag cannot be destroyed.
    EXPECT_EQ(vipl::VipDestroyPtag(nic, ptag), VipResult::VIP_ERROR_RESOURCE);
    ASSERT_EQ(vipl::VipDeregisterMem(nic, h), VipResult::VIP_SUCCESS);
    EXPECT_EQ(vipl::VipDestroyPtag(nic, ptag), VipResult::VIP_SUCCESS);
    EXPECT_EQ(vipl::VipDestroyPtag(nic, ptag), VipResult::VIP_INVALID_PTAG);
    // Registration against a dead ptag fails.
    EXPECT_EQ(vipl::VipRegisterMem(nic, va, 4096, {ptag, false, false}, h),
              VipResult::VIP_INVALID_PTAG);
    // Double deregistration is rejected, not UB.
    EXPECT_EQ(vipl::VipDeregisterMem(nic, h), VipResult::VIP_PROTECTION_ERROR);
  };
  cluster.run({program});
}

TEST(ProviderTest, CreateViValidatesUpfront) {
  Cluster cluster(configFor("bvia", 1));
  auto program = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    Vi* vi = nullptr;
    vipl::VipViAttributes attrs;  // ptag 0 = invalid
    EXPECT_EQ(vipl::VipCreateVi(nic, attrs, nullptr, nullptr, vi),
              VipResult::VIP_INVALID_PTAG);
    attrs.ptag = vipl::VipCreatePtag(nic);
    attrs.enableRdmaRead = true;  // bvia has no RDMA read
    EXPECT_EQ(vipl::VipCreateVi(nic, attrs, nullptr, nullptr, vi),
              VipResult::VIP_INVALID_RDMAREAD);
    attrs.enableRdmaRead = false;
    EXPECT_EQ(vipl::VipCreateVi(nic, attrs, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    // Destroying a VI twice fails cleanly.
    EXPECT_EQ(vipl::VipDestroyVi(nic, vi), VipResult::VIP_SUCCESS);
  };
  cluster.run({program});
}

TEST(SocketsTest, ListenerAcceptTimesOut) {
  Cluster cluster(configFor("clan", 1));
  auto program = [&](NodeEnv& env) {
    upper::sockets::StreamListener listener(env, 4242);
    EXPECT_THROW((void)listener.accept(sim::msec(1)), std::runtime_error);
  };
  cluster.run({program});
}

TEST(SocketsTest, ConnectToSilentHostTimesOut) {
  Cluster cluster(configFor("clan", 2));
  auto program = [&](NodeEnv& env) {
    // Node 1 exists but never listens: the request waits out the server's
    // grace period and is rejected.
    EXPECT_THROW(
        (void)upper::sockets::StreamSocket::connect(env, 1, 4343),
        std::runtime_error);
  };
  cluster.run({program, nullptr});
}

TEST(EngineCornerTest, RunUntilInterleavesWithProcesses) {
  sim::Engine eng;
  int progress = 0;
  sim::Process p(eng, "stepper", [&] {
    for (int i = 0; i < 5; ++i) {
      eng.currentProcess()->advance(sim::usec(10));
      ++progress;
    }
  });
  EXPECT_FALSE(eng.runUntil(sim::usec(25)));
  EXPECT_EQ(progress, 2);
  EXPECT_TRUE(eng.runUntil(sim::usec(1000)));
  EXPECT_EQ(progress, 5);
  EXPECT_TRUE(p.finished());
}

TEST(EngineCornerTest, ChargeCpuAddsBusyWithoutTimePassing) {
  sim::Engine eng;
  sim::SimTime at = -1;
  sim::Process p(eng, "isr", [&] {
    eng.currentProcess()->chargeCpu(sim::usec(7));
    at = eng.now();
  });
  eng.run();
  EXPECT_EQ(at, 0);
  EXPECT_EQ(p.cpuBusy(), sim::usec(7));
}

TEST(ClusterTest, LossRateZeroMeansNoDrops) {
  ClusterConfig cfg = configFor("clan");
  Cluster cluster(cfg);
  auto a = [&](NodeEnv& env) { env.self.advance(sim::usec(10)); };
  cluster.run({a, nullptr});
  EXPECT_EQ(cluster.network().uplink(0).framesDropped(), 0u);
}

}  // namespace
}  // namespace vibe
