// Session-recovery tests: establish/exchange, automatic reconnect with
// exactly-once replay under injected connection breaks, the circuit
// breaker, recovery-mode upper layers (msg, rpc, sockets, getput), and a
// seed sweep running flap-injecting fault plans over the msg and rpc
// workloads — with the cross-epoch invariants checked from the trace
// stream and every seed replayed twice for digest identity.
//
// Seed count: VIBE_CHAOS_SEEDS env var (default 32).
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariants.hpp"
#include "harness/sweep.hpp"
#include "nic/profiles.hpp"
#include "session/session.hpp"
#include "simcore/prng.hpp"
#include "upper/msg/communicator.hpp"
#include "upper/rpc/rpc.hpp"
#include "upper/sockets/stream.hpp"
#include "upper/getput/window.hpp"
#include "vibe/cluster.hpp"

namespace vibe {
namespace {

using fault::FaultAction;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::InvariantChecker;
using fault::LinkSide;
using session::ReconnectPolicy;
using session::Session;
using session::SessionConfig;
using session::SessionState;
using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using upper::msg::CommConfig;
using upper::msg::Communicator;

int seedCount() {
  if (const char* env = std::getenv("VIBE_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 32;
}

std::vector<std::byte> pattern(std::size_t len, std::uint64_t seed) {
  std::vector<std::byte> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = std::byte(static_cast<std::uint8_t>(seed * 7 + i * 13));
  }
  return out;
}

SessionConfig sessionCfg(std::uint32_t sid, fabric::NodeId remote,
                         bool initiator, std::uint64_t seed) {
  SessionConfig c;
  c.sid = sid;
  c.remoteNode = remote;
  c.discriminator = 0x5345'5331;  // "SES1"
  c.initiator = initiator;
  c.policy.seed = seed;
  return c;
}

/// A partition long enough to exhaust any profile's RTO retry budget
/// (rtoBase up to 2ms, budget 16, cap 8 => the connection breaks at most
/// ~222ms in), yet far shorter than the session's retry capacity.
FaultPlan breakPlan(std::uint64_t seed, sim::SimTime start,
                    sim::Duration duration) {
  FaultPlan plan;
  plan.seed = seed;
  FaultAction part;
  part.kind = FaultKind::Partition;
  part.node = 1;
  part.side = LinkSide::Both;
  part.start = start;
  part.duration = duration;
  part.rate = 1.0;
  plan.actions.push_back(part);
  return plan;
}

// ---------------------------------------------------------------------------
// Direct session tests
// ---------------------------------------------------------------------------

TEST(SessionBasic, EchoExchangeDeliversInOrder) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.seed = 3;
  Cluster cluster(cfg);
  constexpr int kMsgs = 25;
  int echoed = 0;

  auto node0 = [&](NodeEnv& env) {
    Session s(env.nic, sessionCfg(1, 1, /*initiator=*/true, 3));
    ASSERT_TRUE(s.establish());
    EXPECT_EQ(s.state(), SessionState::Established);
    for (int i = 0; i < kMsgs; ++i) {
      ASSERT_TRUE(s.send(pattern(200 + i, i)));
      std::vector<std::byte> back;
      ASSERT_TRUE(s.recv(back, sim::kSecond));
      EXPECT_EQ(back, pattern(200 + i, i + 1000));
      ++echoed;
    }
    EXPECT_TRUE(s.flush(sim::kSecond));
    EXPECT_EQ(s.stats().sent, static_cast<std::uint64_t>(kMsgs));
    EXPECT_EQ(s.stats().delivered, static_cast<std::uint64_t>(kMsgs));
    EXPECT_EQ(s.stats().reconnects, 0u);
    EXPECT_EQ(s.unconfirmed(), 0u);
  };
  auto node1 = [&](NodeEnv& env) {
    Session s(env.nic, sessionCfg(1, 0, /*initiator=*/false, 3));
    ASSERT_TRUE(s.establish());
    for (int i = 0; i < kMsgs; ++i) {
      std::vector<std::byte> msg;
      ASSERT_TRUE(s.recv(msg, sim::kSecond));
      EXPECT_EQ(msg, pattern(200 + i, i));
      ASSERT_TRUE(s.send(pattern(200 + i, i + 1000)));
    }
    EXPECT_TRUE(s.flush(sim::kSecond));
  };
  cluster.run({node0, node1});
  EXPECT_EQ(echoed, kMsgs);
}

TEST(SessionBasic, RejectsOversizeAndPreEstablishSends) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  Cluster cluster(cfg);
  auto node0 = [&](NodeEnv& env) {
    SessionConfig sc = sessionCfg(1, 1, true, 0);
    sc.maxMessageBytes = 256;
    Session s(env.nic, sc);
    EXPECT_FALSE(s.send(pattern(10, 0)));  // Idle: establish() not called
    EXPECT_EQ(s.state(), SessionState::Idle);
    ASSERT_TRUE(s.establish());
    EXPECT_FALSE(s.send(pattern(257, 0)));  // exceeds maxMessageBytes
    EXPECT_TRUE(s.send(pattern(256, 0)));
    EXPECT_TRUE(s.flush(sim::kSecond));
  };
  auto node1 = [&](NodeEnv& env) {
    SessionConfig sc = sessionCfg(1, 0, false, 0);
    sc.maxMessageBytes = 256;
    Session s(env.nic, sc);
    ASSERT_TRUE(s.establish());
    std::vector<std::byte> msg;
    ASSERT_TRUE(s.recv(msg, sim::kSecond));
    EXPECT_EQ(msg.size(), 256u);
  };
  cluster.run({node0, node1});
}

TEST(SessionRecovery, ReconnectsAndReplaysExactlyOnce) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.seed = 17;
  Cluster cluster(cfg);

  sim::Tracer tracer(512);
  InvariantChecker checker(cfg.profile.rtoRetryBudget);
  checker.attach(tracer);
  cluster.setTracer(&tracer);

  // Break the connection ~60ms in; the sender keeps producing through the
  // outage, so unconfirmed messages must replay after the reconnect.
  FaultInjector injector(breakPlan(17, sim::msec(60), sim::msec(400)));
  injector.arm(cluster);

  constexpr int kMsgs = 120;
  std::uint64_t senderReconnects = 0;
  std::uint64_t receiverDelivered = 0;

  auto sender = [&](NodeEnv& env) {
    Session s(env.nic, sessionCfg(1, 1, true, 17));
    ASSERT_TRUE(s.establish());
    for (int i = 0; i < kMsgs; ++i) {
      ASSERT_TRUE(s.send(pattern(300, i)));
      // Pace production across the fault window; progress() is where the
      // sender notices the break and runs the blocking reconnect.
      env.self.advance(sim::msec(8), sim::CpuUse::Idle);
      s.progress();
      ASSERT_FALSE(s.down());
    }
    ASSERT_TRUE(s.flush(sim::kSecond * 5));
    senderReconnects = s.stats().reconnects;
    EXPECT_GT(s.stats().lastMttr, 0);
    EXPECT_GT(s.stats().replayed, 0u);
  };
  auto receiver = [&](NodeEnv& env) {
    Session s(env.nic, sessionCfg(1, 0, false, 17));
    ASSERT_TRUE(s.establish());
    for (int i = 0; i < kMsgs; ++i) {
      std::vector<std::byte> msg;
      ASSERT_TRUE(s.recv(msg, sim::kSecond * 5)) << "message " << i;
      EXPECT_EQ(msg, pattern(300, i)) << "message " << i;
    }
    receiverDelivered = s.stats().delivered;
  };
  cluster.run({sender, receiver});
  checker.finalize(cluster);

  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GE(senderReconnects, 1u);
  EXPECT_EQ(receiverDelivered, static_cast<std::uint64_t>(kMsgs));
  EXPECT_GT(checker.sessionReplays(), 0u);
  EXPECT_GE(checker.sessionRecoveries(), 1u);
}

TEST(SessionRecovery, CircuitBreakerDegradesToDown) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.seed = 23;
  Cluster cluster(cfg);

  sim::Tracer tracer(512);
  InvariantChecker checker(cfg.profile.rtoRetryBudget);
  checker.attach(tracer);
  checker.setAllowDownAtExit(true);  // tripping the breaker is the point
  cluster.setTracer(&tracer);

  // Permanent partition: recovery can never succeed.
  FaultInjector injector(breakPlan(23, sim::msec(10), sim::kSecond * 30));
  injector.arm(cluster);

  auto node0 = [&](NodeEnv& env) {
    SessionConfig sc = sessionCfg(1, 1, true, 23);
    sc.policy.attemptsPerRound = 2;
    sc.policy.maxRounds = 3;
    Session s(env.nic, sc);
    ASSERT_TRUE(s.establish());
    while (!s.down()) {
      ASSERT_TRUE(s.send(pattern(100, 1)) || s.down());
      env.self.advance(sim::msec(10), sim::CpuUse::Idle);
      s.progress();
      ASSERT_LT(env.now(), sim::kSecond * 20) << "breaker never tripped";
    }
    EXPECT_EQ(s.state(), SessionState::Down);
    EXPECT_FALSE(s.send(pattern(100, 1)));
    std::vector<std::byte> msg;
    EXPECT_FALSE(s.recv(msg, sim::msec(1)));
    EXPECT_FALSE(s.flush(sim::msec(1)));
  };
  auto node1 = [&](NodeEnv& env) {
    SessionConfig sc = sessionCfg(1, 0, false, 23);
    sc.policy.attemptsPerRound = 2;
    sc.policy.maxRounds = 3;
    Session s(env.nic, sc);
    ASSERT_TRUE(s.establish());
    while (!s.down()) {
      std::vector<std::byte> msg;
      if (s.recv(msg, sim::msec(50))) continue;
      ASSERT_LT(env.now(), sim::kSecond * 20) << "breaker never tripped";
    }
    EXPECT_EQ(s.state(), SessionState::Down);
  };
  cluster.run({node0, node1});
  checker.finalize(cluster);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(SessionRecovery, ReopenRevivesATrippedSession) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");
  cfg.seed = 29;
  Cluster cluster(cfg);

  // 300 ms partition: long enough that the initiator's RTO budget burns
  // (~150 ms) and its tightened breaker trips Down while the link is
  // still dead — but the link comes back, so reopen() can revive it.
  FaultInjector injector(breakPlan(29, sim::msec(10), sim::msec(300)));
  injector.arm(cluster);
  sim::Tracer dbgTracer(8192);
  dbgTracer.enable(sim::TraceCategory::Session);
  cluster.setTracer(&dbgTracer);

  constexpr int kTotal = 30;
  constexpr int kBeforeBreak = 20;
  bool initiatorTripped = false;

  // Tight policy on both sides: 4 attempts bounded by a 3 ms connect and
  // a 5 ms hello burn out in ~40 ms, far less than the partition's
  // remaining life, so the breaker genuinely trips instead of the
  // reconnect loop outliving the outage.
  auto tighten = [](SessionConfig& sc) {
    sc.policy.attemptsPerRound = 2;
    sc.policy.maxRounds = 2;
    sc.policy.connectTimeout = sim::msec(3);
    sc.policy.helloTimeout = sim::msec(5);
  };

  auto node0 = [&](NodeEnv& env) {
    SessionConfig sc = sessionCfg(1, 1, true, 29);
    tighten(sc);
    Session s(env.nic, sc);
    ASSERT_TRUE(s.establish());
    int sent = 0;
    // Send into the partition, then idle until the breaker trips; the
    // messages unconfirmed at the break survive the Down episode and
    // replay after the revival.
    while (!s.down()) {
      if (sent < kBeforeBreak && s.send(pattern(64, sent))) ++sent;
      env.self.advance(sim::msec(5), sim::CpuUse::Idle);
      s.progress();
      ASSERT_LT(env.now(), sim::kSecond * 5) << "breaker never tripped";
    }
    EXPECT_EQ(s.state(), SessionState::Down);
    initiatorTripped = true;
    EXPECT_FALSE(s.send(pattern(64, sent)));  // Down refuses sends
    while (s.down()) {
      env.self.advance(sim::msec(10), sim::CpuUse::Idle);
      (void)s.reopen();
      ASSERT_LT(env.now(), sim::kSecond * 5) << "reopen never succeeded";
    }
    EXPECT_EQ(s.state(), SessionState::Established);
    EXPECT_GE(s.stats().reopens, 1u);
    while (sent < kTotal) {
      ASSERT_TRUE(s.send(pattern(64, sent)));
      ++sent;
    }
    ASSERT_TRUE(s.flush(sim::kSecond * 5));
    EXPECT_EQ(s.unconfirmed(), 0u);
  };
  auto node1 = [&](NodeEnv& env) {
    SessionConfig sc = sessionCfg(1, 0, false, 29);
    tighten(sc);
    Session s(env.nic, sc);
    ASSERT_TRUE(s.establish());
    int got = 0;
    // Exactly-once, in order, across the break: a passive session that
    // trips Down keeps offering reopen() (a cheap claim poll) until the
    // peer redials.
    while (got < kTotal) {
      if (s.down()) {
        env.self.advance(sim::msec(10), sim::CpuUse::Idle);
        (void)s.reopen();
      } else {
        std::vector<std::byte> m;
        if (s.recv(m, sim::msec(20))) {
          EXPECT_EQ(m, pattern(64, got)) << "message " << got;
          ++got;
        }
      }
      ASSERT_LT(env.now(), sim::kSecond * 5) << "stream never completed";
    }
    EXPECT_EQ(s.stats().delivered, static_cast<std::uint64_t>(kTotal));
  };
  cluster.run({node0, node1});
  EXPECT_TRUE(initiatorTripped);
  if (::testing::Test::HasFailure()) std::fputs(dbgTracer.dump().c_str(), stderr);
}

// ---------------------------------------------------------------------------
// Recovery-mode upper layers
// ---------------------------------------------------------------------------

TEST(RecoveryLayers, SocketsStreamSurvivesConnectionBreak) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("mvia");
  cfg.seed = 31;
  Cluster cluster(cfg);
  FaultInjector injector(breakPlan(31, sim::msec(50), sim::msec(400)));
  injector.arm(cluster);

  constexpr std::size_t kChunk = 4096;
  constexpr int kChunks = 40;
  const std::vector<std::byte> blob = pattern(kChunk * kChunks, 31);
  std::size_t received = 0;

  upper::sockets::StreamConfig sc;
  sc.recovery = true;
  sc.reconnect.seed = 31;

  auto client = [&](NodeEnv& env) {
    auto sock = upper::sockets::StreamSocket::connect(env, 1, 4242, sc);
    for (int i = 0; i < kChunks; ++i) {
      sock->sendAll(std::span<const std::byte>(blob).subspan(i * kChunk,
                                                             kChunk));
      env.self.advance(sim::msec(10), sim::CpuUse::Idle);
    }
    sock->close();
    // Drain until the peer's FIN so the session confirms everything.
    std::byte sink[64];
    while (sock->recvSome(sink) != 0) {
    }
  };
  auto server = [&](NodeEnv& env) {
    upper::sockets::StreamListener listener(env, 4242, sc);
    auto sock = listener.acceptRecoverable(0);
    std::vector<std::byte> got(blob.size());
    sock->recvAll(got);
    EXPECT_EQ(got, blob);
    received = got.size();
    sock->close();
  };
  cluster.run({client, server});
  EXPECT_EQ(received, blob.size());
}

TEST(RecoveryLayers, GetPutFallsBackToEmulationOverRecoveryComm) {
  ClusterConfig cfg;
  cfg.profile = nic::profileByName("clan");  // RDMA-capable on purpose
  cfg.seed = 5;
  Cluster cluster(cfg);
  constexpr std::size_t kLen = 512;

  std::vector<std::function<void(NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < 2; ++r) {
    programs.push_back([&, r](NodeEnv& env) {
      CommConfig cc;
      cc.recovery = true;
      cc.reconnect.seed = 5;
      auto comm = Communicator::create(env, r, 2, cc);
      EXPECT_EQ(comm->peerVi(1 - r), nullptr);
      auto win = upper::getput::Window::create(*comm);
      if (r == 0) {
        win->put(1, 64, pattern(kLen, 9));
        win->fence();
        EXPECT_EQ(win->get(1, 64, kLen), pattern(kLen, 9));
        // Even on an RDMA-capable profile the recovery communicator must
        // route one-sided ops through the exactly-once message path.
        EXPECT_EQ(win->rdmaPuts(), 0u);
        EXPECT_EQ(win->rdmaGets(), 0u);
        EXPECT_GT(win->emulatedPuts(), 0u);
        EXPECT_GT(win->emulatedGets(), 0u);
      } else {
        win->fence();
        EXPECT_EQ(win->readLocal(64, kLen), pattern(kLen, 9));
      }
      win->fence();
    });
  }
  cluster.run(std::move(programs));
}

// ---------------------------------------------------------------------------
// Seed sweep: flap plans over the msg and rpc recovery workloads
// ---------------------------------------------------------------------------

/// Two partitions per run, each long enough to break the connection under
/// traffic, separated by enough calm for recovery to finish.
FaultPlan flapPlan(std::uint64_t seed) {
  sim::Xoshiro256 rng(seed, "recovery-flaps");
  FaultPlan plan;
  plan.seed = seed;
  sim::SimTime t = sim::msec(30 + static_cast<sim::SimTime>(rng.below(80)));
  for (int i = 0; i < 2; ++i) {
    FaultAction part;
    part.kind = FaultKind::Partition;
    part.node = static_cast<std::uint32_t>(rng.below(2));
    part.side = LinkSide::Both;
    part.start = t;
    part.duration =
        sim::msec(260 + static_cast<sim::Duration>(rng.below(140)));
    part.rate = 1.0;
    plan.actions.push_back(part);
    t = part.end() + sim::msec(300 + static_cast<sim::SimTime>(rng.below(150)));
  }
  return plan;
}

/// Paced echo over a recovery-mode Communicator; the barrier at the end
/// proves both streams fully delivered before either rank exits.
void msgRecoveryWorkload(Cluster& cluster, std::uint64_t seed) {
  constexpr int kRounds = 30;
  int echoed = 0;
  std::vector<std::function<void(NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < 2; ++r) {
    programs.push_back([&, r, seed](NodeEnv& env) {
      CommConfig cc;
      cc.recovery = true;
      cc.reconnect.seed = seed;
      auto comm = Communicator::create(env, r, 2, cc);
      for (int i = 0; i < kRounds; ++i) {
        const std::size_t len = i % 2 == 0 ? 300 : 12000;  // eager + chunked
        if (r == 0) {
          comm->send(1, i, pattern(len, i));
          const auto back = comm->recv(1, 1000 + i);
          EXPECT_EQ(back, pattern(len, i + 1));
          ++echoed;
          env.self.advance(sim::msec(22), sim::CpuUse::Idle);
        } else {
          const auto got = comm->recv(0, i);
          EXPECT_EQ(got, pattern(len, i));
          comm->send(0, 1000 + i, pattern(len, i + 1));
        }
      }
      comm->barrier();
    });
  }
  cluster.run(std::move(programs));
  EXPECT_EQ(echoed, kRounds);
}

/// Paced request/response over recovery-mode rpc; shutdown() flushes the
/// client stream so nothing is left unconfirmed at exit.
void rpcRecoveryWorkload(Cluster& cluster, std::uint64_t seed) {
  constexpr int kCalls = 14;
  int answered = 0;
  auto server = [&](NodeEnv& env) {
    upper::rpc::RpcConfig rc;
    rc.recovery = true;
    rc.reconnect.seed = seed;
    upper::rpc::RpcServer srv(env, rc);
    srv.registerMethod(1, [](std::span<const std::byte> in) {
      std::vector<std::byte> out(in.begin(), in.end());
      for (auto& b : out) b ^= std::byte{0x5a};
      return out;
    });
    const fabric::NodeId clients[] = {1};
    srv.acceptClients(clients);
    srv.serve();
    EXPECT_EQ(srv.requestsServed(), static_cast<std::uint64_t>(kCalls));
  };
  auto client = [&](NodeEnv& env) {
    upper::rpc::RpcConfig rc;
    rc.recovery = true;
    rc.reconnect.seed = seed;
    rc.clientId = 0;
    upper::rpc::RpcClient cli(env, 0, rc);
    for (int i = 0; i < kCalls; ++i) {
      const auto args = pattern(100 + i * 37, i);
      const auto reply = cli.call(1, args);
      auto expect = args;
      for (auto& b : expect) b ^= std::byte{0x5a};
      EXPECT_EQ(reply, expect) << "call " << i;
      ++answered;
      env.self.advance(sim::msec(45), sim::CpuUse::Idle);
    }
    cli.shutdown();
  };
  cluster.run({server, client});
  EXPECT_EQ(answered, kCalls);
}

using WorkloadFn = void (*)(Cluster&, std::uint64_t);

struct RunResult {
  std::uint64_t digest = 0;
  sim::SimTime endTime = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t recoveries = 0;
  std::vector<std::string> violations;
  std::string planText;
};

RunResult runOnce(std::uint64_t seed, WorkloadFn workload) {
  static const char* kProfiles[] = {"mvia", "bvia", "clan"};
  ClusterConfig cfg;
  cfg.profile = nic::profileByName(kProfiles[seed % 3]);
  cfg.seed = seed;
  Cluster cluster(cfg);

  sim::Tracer tracer(512);
  InvariantChecker checker(cfg.profile.rtoRetryBudget);
  checker.attach(tracer);
  checker.setMttrBoundUsec(2'000'000);  // no recovery may take > 2 s
  cluster.setTracer(&tracer);

  FaultInjector injector(flapPlan(seed));
  injector.arm(cluster);

  workload(cluster, seed);
  checker.finalize(cluster);

  RunResult r;
  r.digest = tracer.digest();
  r.endTime = cluster.now();
  r.deliveries = checker.sessionDeliveries();
  r.recoveries = checker.sessionRecoveries();
  r.violations = checker.violations();
  r.planText = injector.plan().toString();
  return r;
}

struct SweepCase {
  const char* name;
  WorkloadFn fn;
};

class RecoverySweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    Workloads, RecoverySweep,
    ::testing::Values(SweepCase{"msg", msgRecoveryWorkload},
                      SweepCase{"rpc", rpcRecoveryWorkload}),
    [](const auto& pi) { return std::string(pi.param.name); });

TEST_P(RecoverySweep, ExactlyOnceAcrossFlapsAndDeterministic) {
  const SweepCase& wc = GetParam();
  const int seeds = seedCount();
  // Each seed is an independent simulation point: run them through the
  // sweep harness (VIBE_JOBS workers), assert in seed order afterwards.
  struct SeedResult {
    RunResult first;
    RunResult second;
  };
  const auto results = harness::runSweep(
      static_cast<std::size_t>(seeds), [&](harness::PointEnv& env) {
        const std::uint64_t seed = 2000 + env.index * 7919;
        SeedResult r;
        r.first = runOnce(seed, wc.fn);
        // Determinism: the same seed must replay byte-for-byte.
        r.second = runOnce(seed, wc.fn);
        return r;
      });
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 2000 + static_cast<std::uint64_t>(s) * 7919;
    SCOPED_TRACE("workload=" + std::string(wc.name) +
                 " seed=" + std::to_string(seed));
    const RunResult& first = results[static_cast<std::size_t>(s)].first;
    const RunResult& second = results[static_cast<std::size_t>(s)].second;
    EXPECT_TRUE(first.violations.empty())
        << "invariant violations:\n"
        << ::testing::PrintToString(first.violations) << "\nplan:\n"
        << first.planText;
    EXPECT_GT(first.deliveries, 0u);
    EXPECT_GE(first.recoveries, 1u)
        << "no session ever reconnected; plan:\n" << first.planText;
    EXPECT_EQ(first.digest, second.digest)
        << "trace digest diverged on replay; plan:\n" << first.planText;
    EXPECT_EQ(first.endTime, second.endTime);
  }
}

}  // namespace
}  // namespace vibe
