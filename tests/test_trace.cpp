// Tests for the tracing subsystem: ring-buffer semantics, category
// filtering, and integration with the NIC datapath.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "simcore/trace.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

namespace vibe {
namespace {

using sim::TraceCategory;
using sim::Tracer;

TEST(TracerTest, DisabledCategoriesRecordNothing) {
  Tracer t;
  t.record(1, TraceCategory::Wire, 0, "dropped");
  EXPECT_EQ(t.totalRecorded(), 0u);
  t.enable(TraceCategory::Wire);
  t.record(2, TraceCategory::Wire, 0, "kept");
  t.record(3, TraceCategory::Rx, 0, "still dropped");
  EXPECT_EQ(t.totalRecorded(), 1u);
  EXPECT_EQ(t.snapshot().size(), 1u);
  EXPECT_EQ(t.snapshot()[0].message, "kept");
}

TEST(TracerTest, RingKeepsNewestInOrder) {
  Tracer t(4);
  t.enableAll();
  for (int i = 0; i < 10; ++i) {
    t.record(i, TraceCategory::User, 0, std::to_string(i));
  }
  EXPECT_EQ(t.totalRecorded(), 10u);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().message, "6");
  EXPECT_EQ(snap.back().message, "9");
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].time, snap[i].time);
  }
}

TEST(TracerTest, DumpContainsCategoryAndComponent) {
  Tracer t;
  t.enable(TraceCategory::Reliability);
  t.record(sim::usec(5), TraceCategory::Reliability, 3, "RTO fired");
  const std::string dump = t.dump();
  EXPECT_NE(dump.find("reliability"), std::string::npos);
  EXPECT_NE(dump.find("n3"), std::string::npos);
  EXPECT_NE(dump.find("RTO fired"), std::string::npos);
}

TEST(TracerTest, ClearResets) {
  Tracer t;
  t.enableAll();
  t.record(1, TraceCategory::User, 0, "x");
  t.clear();
  EXPECT_EQ(t.totalRecorded(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(TracerTest, ToStringCoversEveryCategory) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(TraceCategory::kCount);
       ++i) {
    const char* name = sim::toString(static_cast<TraceCategory>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "category " << i << " missing from toString";
    // Names must be unique (dump output and exporters key on them).
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_STRNE(name, sim::toString(static_cast<TraceCategory>(j)));
    }
  }
  EXPECT_STREQ(sim::toString(TraceCategory::kCount), "?");
}

TEST(TracerTest, SnapshotIsOldestFirstAcrossWrapBoundaries) {
  // Exercise the ring at several capacities and fill ratios: partially
  // full, exactly full, and wrapped one or more times. snapshot() must
  // always return retained records oldest-first with contiguous times.
  for (const std::size_t cap : {1u, 2u, 3u, 8u}) {
    for (const int total : {1, 2, 3, 7, 8, 9, 17}) {
      Tracer t(cap);
      t.enableAll();
      for (int i = 0; i < total; ++i) {
        t.record(i, TraceCategory::User, 0, std::to_string(i));
      }
      const auto snap = t.snapshot();
      const std::size_t expect =
          std::min<std::size_t>(cap, static_cast<std::size_t>(total));
      ASSERT_EQ(snap.size(), expect) << "cap=" << cap << " total=" << total;
      for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].time,
                  static_cast<sim::SimTime>(total - static_cast<int>(expect) +
                                            static_cast<int>(i)))
            << "cap=" << cap << " total=" << total << " slot=" << i;
      }
    }
  }
}

TEST(TracerTest, SinkAttachAndDetachMidRun) {
  Tracer t(2);  // tiny ring: the sink must still see the full stream
  t.enableAll();
  std::vector<std::string> seen;
  t.record(1, TraceCategory::User, 0, "before-attach");
  t.setSink([&seen](const sim::TraceRecord& r) { seen.push_back(r.message); });
  for (int i = 0; i < 5; ++i) {
    t.record(2 + i, TraceCategory::User, 0, "s" + std::to_string(i));
  }
  t.setSink(nullptr);
  t.record(10, TraceCategory::User, 0, "after-detach");
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front(), "s0");
  EXPECT_EQ(seen.back(), "s4");
  // Detaching does not stop recording proper.
  EXPECT_EQ(t.totalRecorded(), 7u);
}

TEST(TracerTest, DigestIsCapacityIndependent) {
  // The digest hashes the accepted stream, not the ring contents: a
  // 2-slot tracer and a 1024-slot tracer fed identical records agree.
  Tracer small(2);
  Tracer large(1024);
  small.enableAll();
  large.enableAll();
  for (int i = 0; i < 100; ++i) {
    small.record(i, TraceCategory::Rx, i % 4, "rec" + std::to_string(i));
    large.record(i, TraceCategory::Rx, i % 4, "rec" + std::to_string(i));
  }
  EXPECT_EQ(small.digest(), large.digest());
  EXPECT_EQ(small.totalRecorded(), large.totalRecorded());
  // Any divergence in the stream must change the digest.
  Tracer differs(2);
  differs.enableAll();
  for (int i = 0; i < 100; ++i) {
    differs.record(i, TraceCategory::Rx, i % 4,
                   i == 50 ? "mutated" : "rec" + std::to_string(i));
  }
  EXPECT_NE(small.digest(), differs.digest());
}

TEST(TracerIntegration, NicDatapathEmitsExpectedCategories) {
  suite::ClusterConfig cfg;
  cfg.profile = nic::clanProfile();
  suite::Cluster cluster(cfg);
  Tracer tracer;
  tracer.enableAll();
  cluster.node(0).device().setTracer(&tracer);
  cluster.node(1).device().setTracer(&tracer);

  auto client = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    auto buf = nic.memory().alloc(8192, mem::kPageSize);
    mem::MemHandle h = 0;
    ASSERT_EQ(vipl::VipRegisterMem(nic, buf, 8192, {ptag, false, false}, h),
              vipl::VipResult::VIP_SUCCESS);
    vipl::Vi* vi = nullptr;
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              vipl::VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, 9}, sim::kSecond),
              vipl::VipResult::VIP_SUCCESS);
    vipl::VipDescriptor d = vipl::VipDescriptor::send(buf, h, 5000);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), vipl::VipResult::VIP_SUCCESS);
    vipl::VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollSend(vi, done), vipl::VipResult::VIP_SUCCESS);
  };
  auto server = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    auto buf = nic.memory().alloc(8192, mem::kPageSize);
    mem::MemHandle h = 0;
    ASSERT_EQ(vipl::VipRegisterMem(nic, buf, 8192, {ptag, false, false}, h),
              vipl::VipResult::VIP_SUCCESS);
    vipl::Vi* vi = nullptr;
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              vipl::VipResult::VIP_SUCCESS);
    vipl::VipDescriptor d = vipl::VipDescriptor::recv(buf, h, 8192);
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &d), vipl::VipResult::VIP_SUCCESS);
    vipl::PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, 9}, sim::kSecond, conn),
              vipl::VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi),
              vipl::VipResult::VIP_SUCCESS);
    vipl::VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollRecv(vi, done), vipl::VipResult::VIP_SUCCESS);
  };
  cluster.run({client, server});

  bool sawDoorbell = false;
  bool sawWire = false;
  bool sawRx = false;
  bool sawCompletion = false;
  for (const auto& rec : tracer.snapshot()) {
    sawDoorbell |= rec.category == TraceCategory::Doorbell;
    sawWire |= rec.category == TraceCategory::Wire;
    sawRx |= rec.category == TraceCategory::Rx;
    sawCompletion |= rec.category == TraceCategory::Completion;
  }
  EXPECT_TRUE(sawDoorbell);
  EXPECT_TRUE(sawWire);   // a 5000 B message on a 2 KB MTU: 3 fragments
  EXPECT_TRUE(sawRx);
  EXPECT_TRUE(sawCompletion);
  // 3 data fragments from node 0 -> at least 3 Wire records.
  int wireCount = 0;
  for (const auto& rec : tracer.snapshot()) {
    if (rec.category == TraceCategory::Wire && rec.component == 0) {
      ++wireCount;
    }
  }
  EXPECT_GE(wireCount, 3);
}

TEST(TracerIntegration, RetransmissionsAreTraced) {
  suite::ClusterConfig cfg;
  cfg.profile = nic::clanProfile();
  cfg.lossRate = 0.5;  // brutal loss to force RTOs
  cfg.seed = 11;
  suite::Cluster cluster(cfg);
  Tracer tracer;
  tracer.enable(TraceCategory::Reliability);
  cluster.node(0).device().setTracer(&tracer);

  auto client = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    auto buf = nic.memory().alloc(4096, mem::kPageSize);
    mem::MemHandle h = 0;
    ASSERT_EQ(vipl::VipRegisterMem(nic, buf, 4096, {ptag, false, false}, h),
              vipl::VipResult::VIP_SUCCESS);
    vipl::Vi* vi = nullptr;
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              vipl::VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, 9}, sim::kSecond * 30),
              vipl::VipResult::VIP_SUCCESS);
    vipl::VipDescriptor d = vipl::VipDescriptor::send(buf, h, 4096);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), vipl::VipResult::VIP_SUCCESS);
    vipl::VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.sendWait(vi, sim::kSecond * 30, done),
              vipl::VipResult::VIP_SUCCESS);
  };
  auto server = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    auto buf = nic.memory().alloc(4096, mem::kPageSize);
    mem::MemHandle h = 0;
    ASSERT_EQ(vipl::VipRegisterMem(nic, buf, 4096, {ptag, false, false}, h),
              vipl::VipResult::VIP_SUCCESS);
    vipl::Vi* vi = nullptr;
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              vipl::VipResult::VIP_SUCCESS);
    vipl::VipDescriptor d = vipl::VipDescriptor::recv(buf, h, 4096);
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &d), vipl::VipResult::VIP_SUCCESS);
    vipl::PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, 9}, sim::kSecond * 30, conn),
              vipl::VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi),
              vipl::VipResult::VIP_SUCCESS);
    vipl::VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.recvWait(vi, sim::kSecond * 30, done),
              vipl::VipResult::VIP_SUCCESS);
  };
  cluster.run({client, server});
  EXPECT_GT(tracer.totalRecorded(), 0u) << "50% loss but no RTO traces";
}

}  // namespace
}  // namespace vibe
