// Direct unit tests of the NicDevice datapath, below the VIPL layer:
// endpoint lifecycle, fragmentation arithmetic via stats, pipeline timing,
// retransmission behaviour, and profile feature wiring.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fabric/network.hpp"
#include "mem/host_memory.hpp"
#include "mem/memory_registry.hpp"
#include "nic/nic_device.hpp"
#include "nic/profiles.hpp"
#include "simcore/engine.hpp"

namespace vibe::nic {
namespace {

/// Minimal two-node rig driving NicDevice directly.
struct Rig {
  sim::Engine engine;
  fabric::Network net;
  mem::HostMemory mem0, mem1;
  mem::MemoryRegistry reg0, reg1;
  NicDevice nic0, nic1;
  std::vector<std::pair<ViEndpointId, Completion>> completions0, completions1;

  explicit Rig(const NicProfile& profile)
      : net(engine,
            [&profile] {
              fabric::NetworkParams np;
              np.nodes = 2;
              np.link.bandwidthMBps = profile.linkMBps;
              np.link.propagation = profile.linkPropagation;
              np.link.headerBytes = profile.linkHeaderBytes;
              np.switchLatency = profile.switchLatency;
              return np;
            }()),
        nic0(engine, net, 0, profile, reg0, mem0),
        nic1(engine, net, 1, profile, reg1, mem1) {
    NicDevice::Handlers h0;
    h0.completion = [this](ViEndpointId ep, Completion&& c) {
      completions0.emplace_back(ep, std::move(c));
    };
    nic0.setHandlers(std::move(h0));
    NicDevice::Handlers h1;
    h1.completion = [this](ViEndpointId ep, Completion&& c) {
      completions1.emplace_back(ep, std::move(c));
    };
    nic1.setHandlers(std::move(h1));
  }

  /// Creates a connected endpoint pair with registered buffers.
  struct Pair {
    ViEndpointId e0, e1;
    mem::PtagId p0, p1;
    mem::VirtAddr buf0, buf1;
    mem::MemHandle h0, h1;
  };
  Pair connect(Reliability rel, std::uint64_t bufBytes = 65536) {
    Pair pr;
    pr.p0 = reg0.createPtag();
    pr.p1 = reg1.createPtag();
    pr.e0 = nic0.createEndpoint(pr.p0);
    pr.e1 = nic1.createEndpoint(pr.p1);
    nic0.configureConnection(pr.e0, 1, pr.e1, rel, 1u << 20);
    nic1.configureConnection(pr.e1, 0, pr.e0, rel, 1u << 20);
    pr.buf0 = mem0.alloc(bufBytes, mem::kPageSize);
    pr.buf1 = mem1.alloc(bufBytes, mem::kPageSize);
    EXPECT_EQ(reg0.registerMem(pr.buf0, bufBytes, {pr.p0, true, true}, pr.h0),
              mem::MemStatus::Ok);
    EXPECT_EQ(reg1.registerMem(pr.buf1, bufBytes, {pr.p1, true, true}, pr.h1),
              mem::MemStatus::Ok);
    return pr;
  }
};

WorkRequest sendWr(mem::VirtAddr addr, mem::MemHandle handle,
                   std::uint32_t bytes, std::uint64_t cookie) {
  WorkRequest wr;
  wr.segments.push_back({addr, handle, bytes});
  wr.cookie = cookie;
  return wr;
}

TEST(NicDeviceTest, FragmentCountMatchesMtuArithmetic) {
  NicProfile p = clanProfile();  // mtu 2048
  Rig rig(p);
  auto pr = rig.connect(Reliability::Unreliable);
  rig.nic1.postRecv(pr.e1, sendWr(pr.buf1, pr.h1, 10000, 1));
  rig.nic0.postSend(pr.e0, sendWr(pr.buf0, pr.h0, 10000, 2));
  rig.engine.run();
  // ceil(10000 / 2048) = 5 data fragments.
  EXPECT_EQ(rig.nic0.stats().fragsTx, 5u);
  EXPECT_EQ(rig.nic1.stats().fragsRx, 5u);
  EXPECT_EQ(rig.nic0.stats().bytesTx, 10000u);
  ASSERT_EQ(rig.completions1.size(), 1u);
  EXPECT_EQ(rig.completions1[0].second.bytes, 10000u);
}

TEST(NicDeviceTest, ZeroByteMessageIsOneFragment) {
  Rig rig(clanProfile());
  auto pr = rig.connect(Reliability::Unreliable);
  WorkRequest recv;
  recv.cookie = 1;
  rig.nic1.postRecv(pr.e1, std::move(recv));
  WorkRequest send;
  send.cookie = 2;
  send.hasImmediate = true;
  send.immediate = 0xABCD;
  rig.nic0.postSend(pr.e0, std::move(send));
  rig.engine.run();
  EXPECT_EQ(rig.nic0.stats().fragsTx, 1u);
  ASSERT_EQ(rig.completions1.size(), 1u);
  EXPECT_TRUE(rig.completions1[0].second.hasImmediate);
  EXPECT_EQ(rig.completions1[0].second.immediate, 0xABCDu);
  EXPECT_EQ(rig.completions1[0].second.bytes, 0u);
}

TEST(NicDeviceTest, UnreliableSendCompletesWithoutReceiver) {
  // No posted receive: the message is dropped, yet the UD send completes.
  Rig rig(clanProfile());
  auto pr = rig.connect(Reliability::Unreliable);
  rig.nic0.postSend(pr.e0, sendWr(pr.buf0, pr.h0, 512, 7));
  rig.engine.run();
  ASSERT_EQ(rig.completions0.size(), 1u);
  EXPECT_EQ(rig.completions0[0].second.status, WorkStatus::Ok);
  EXPECT_EQ(rig.completions1.size(), 0u);
  EXPECT_EQ(rig.nic1.stats().rxDroppedNoDescriptor, 1u);
}

TEST(NicDeviceTest, ReliableDeliveryCompletionWaitsForAck) {
  NicProfile p = clanProfile();
  Rig rig(p);
  auto pr = rig.connect(Reliability::ReliableDelivery);
  rig.nic1.postRecv(pr.e1, sendWr(pr.buf1, pr.h1, 4096, 1));

  sim::SimTime sendDone = 0;
  sim::SimTime recvDone = 0;
  NicDevice::Handlers h0;
  h0.completion = [&](ViEndpointId, Completion&&) {
    sendDone = rig.engine.now();
  };
  rig.nic0.setHandlers(std::move(h0));
  NicDevice::Handlers h1;
  h1.completion = [&](ViEndpointId, Completion&&) {
    recvDone = rig.engine.now();
  };
  rig.nic1.setHandlers(std::move(h1));

  rig.nic0.postSend(pr.e0, sendWr(pr.buf0, pr.h0, 4096, 2));
  rig.engine.run();
  ASSERT_GT(sendDone, 0);
  ASSERT_GT(recvDone, 0);
  // The RD send completion needs the remote receipt-ack: it can only land
  // after one full one-way trip plus the ack's return.
  EXPECT_GT(sendDone, recvDone - sim::usec(50));
  EXPECT_GT(rig.nic0.stats().acksRx, 0u);
}

TEST(NicDeviceTest, PostToUnconnectedEndpointFailsCleanly) {
  Rig rig(clanProfile());
  const auto ptag = rig.reg0.createPtag();
  const ViEndpointId e = rig.nic0.createEndpoint(ptag);
  rig.nic0.postSend(e, sendWr(0x1000, 1, 16, 5));
  rig.engine.run();
  ASSERT_EQ(rig.completions0.size(), 1u);
  EXPECT_EQ(rig.completions0[0].second.status, WorkStatus::Aborted);
}

TEST(NicDeviceTest, DestroyedEndpointDropsArrivals) {
  Rig rig(clanProfile());
  auto pr = rig.connect(Reliability::Unreliable);
  rig.nic1.destroyEndpoint(pr.e1);
  rig.nic0.postSend(pr.e0, sendWr(pr.buf0, pr.h0, 128, 1));
  rig.engine.run();
  EXPECT_EQ(rig.nic1.stats().rxDroppedBadEndpoint, 1u);
  EXPECT_EQ(rig.nic1.activeEndpoints(), 0u);
}

TEST(NicDeviceTest, TeardownFlushesPostedWork) {
  Rig rig(clanProfile());
  auto pr = rig.connect(Reliability::ReliableDelivery);
  rig.nic1.postRecv(pr.e1, sendWr(pr.buf1, pr.h1, 128, 11));
  rig.nic1.postRecv(pr.e1, sendWr(pr.buf1, pr.h1, 128, 12));
  rig.nic1.teardownConnection(pr.e1);
  rig.engine.run();
  ASSERT_EQ(rig.completions1.size(), 2u);
  for (const auto& [ep, c] : rig.completions1) {
    EXPECT_EQ(c.status, WorkStatus::Aborted);
    EXPECT_FALSE(c.isSend);
  }
}

TEST(NicDeviceTest, RetransmissionRecoversFromBurstLoss) {
  NicProfile p = clanProfile();
  Rig* rigPtr = nullptr;
  // Build a rig, then crank the loss on node0's uplink after connect.
  Rig rig(p);
  rigPtr = &rig;
  (void)rigPtr;
  auto pr = rig.connect(Reliability::ReliableDelivery);
  rig.net.uplink(0).setLossRate(0.4);
  rig.nic1.postRecv(pr.e1, sendWr(pr.buf1, pr.h1, 8192, 1));
  rig.nic0.postSend(pr.e0, sendWr(pr.buf0, pr.h0, 8192, 2));
  rig.engine.run();
  ASSERT_EQ(rig.completions1.size(), 1u);
  EXPECT_EQ(rig.completions1[0].second.status, WorkStatus::Ok);
  ASSERT_EQ(rig.completions0.size(), 1u);
  EXPECT_EQ(rig.completions0[0].second.status, WorkStatus::Ok);
}

TEST(NicDeviceTest, FirmwarePollProfileScalesDiscoveryWithEndpoints) {
  // Measure one message's latency with 1 vs 17 active endpoints on the
  // firmware-polling profile: the delta must be ~16 * perVi on each side.
  auto oneWay = [](int extraEndpoints) {
    NicProfile p = bviaProfile();
    Rig rig(p);
    auto pr = rig.connect(Reliability::Unreliable);
    for (int i = 0; i < extraEndpoints; ++i) {
      rig.nic0.createEndpoint(rig.reg0.createPtag());
      rig.nic1.createEndpoint(rig.reg1.createPtag());
    }
    sim::SimTime done = 0;
    NicDevice::Handlers h1;
    h1.completion = [&](ViEndpointId, Completion&&) {
      done = rig.engine.now();
    };
    rig.nic1.setHandlers(std::move(h1));
    rig.nic1.postRecv(pr.e1, sendWr(pr.buf1, pr.h1, 64, 1));
    rig.nic0.postSend(pr.e0, sendWr(pr.buf0, pr.h0, 64, 2));
    rig.engine.run();
    return done;
  };
  const sim::SimTime base = oneWay(0);
  const sim::SimTime many = oneWay(16);
  const NicProfile p = bviaProfile();
  // Only the sender-side firmware scan grows (one doorbell discovery).
  EXPECT_NEAR(sim::toUsec(many - base),
              sim::toUsec(p.firmwarePollPerVi) * 16, 1.0);
}

TEST(NicDeviceTest, MviaSendChargesNothingWithoutProcessContext) {
  // HostInline sends from event context route their kernel time through
  // the hostKernel resource instead of crashing on a missing process.
  Rig rig(mviaProfile());
  auto pr = rig.connect(Reliability::Unreliable);
  rig.nic1.postRecv(pr.e1, sendWr(pr.buf1, pr.h1, 3000, 1));
  rig.nic0.postSend(pr.e0, sendWr(pr.buf0, pr.h0, 3000, 2));
  rig.engine.run();
  ASSERT_EQ(rig.completions1.size(), 1u);
  EXPECT_EQ(rig.completions1[0].second.status, WorkStatus::Ok);
  EXPECT_GT(rig.completions1[0].second.hostCpuCost, 0);  // kernel RX time
}

TEST(NicDeviceTest, RdmaWriteValidationFailureBreaksConnection) {
  Rig rig(clanProfile());
  auto pr = rig.connect(Reliability::ReliableDelivery);
  bool errorSeen = false;
  NicDevice::Handlers h1;
  h1.completion = [](ViEndpointId, Completion&&) {};
  h1.connectionError = [&](ViEndpointId, WorkStatus why) {
    errorSeen = true;
    EXPECT_EQ(why, WorkStatus::ProtectionError);
  };
  rig.nic1.setHandlers(std::move(h1));

  // Register the target WITHOUT RDMA-write permission.
  const mem::VirtAddr target = rig.mem1.alloc(4096, mem::kPageSize);
  mem::MemHandle th = 0;
  ASSERT_EQ(rig.reg1.registerMem(target, 4096, {pr.p1, false, false}, th),
            mem::MemStatus::Ok);
  WorkRequest wr = sendWr(pr.buf0, pr.h0, 512, 9);
  wr.op = WorkOp::RdmaWrite;
  wr.remoteAddr = target;
  wr.remoteHandle = th;
  rig.nic0.postSend(pr.e0, std::move(wr));
  rig.engine.run();
  EXPECT_TRUE(errorSeen);
  // The sender learns through the error ack.
  ASSERT_EQ(rig.completions0.size(), 1u);
  EXPECT_NE(rig.completions0[0].second.status, WorkStatus::Ok);
}

}  // namespace
}  // namespace vibe::nic
