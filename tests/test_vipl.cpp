// End-to-end tests of the VIPL provider over the simulated fabric: data
// integrity, spec semantics (states, errors, protection), CQs, immediate
// data, RDMA, notify handlers, and connection management — across all
// three NIC implementation models.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using vipl::Cq;
using vipl::PendingConn;
using vipl::Provider;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;
using vipl::ViState;

constexpr sim::Duration kTimeout = sim::kSecond;
constexpr std::uint64_t kDisc = 5;

ClusterConfig configFor(const std::string& name) {
  ClusterConfig c;
  c.profile = nic::profileByName(name);
  c.nodes = 2;
  return c;
}

/// Registered buffer helper.
struct Buf {
  mem::VirtAddr va = 0;
  mem::MemHandle handle = 0;
};

Buf makeBuf(Provider& nic, mem::PtagId ptag, std::uint64_t len,
            bool rdma = false) {
  Buf b;
  b.va = nic.memory().alloc(len, mem::kPageSize);
  vipl::VipMemAttributes ma;
  ma.ptag = ptag;
  ma.enableRdmaWrite = rdma;
  ma.enableRdmaRead = rdma;
  EXPECT_EQ(vipl::VipRegisterMem(nic, b.va, len, ma, b.handle),
            VipResult::VIP_SUCCESS);
  return b;
}

void fillPattern(Provider& nic, mem::VirtAddr va, std::size_t len,
                 std::uint8_t seed) {
  std::vector<std::byte> data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = std::byte(static_cast<std::uint8_t>(seed + i * 13));
  }
  nic.memory().write(va, data);
}

bool checkPattern(Provider& nic, mem::VirtAddr va, std::size_t len,
                  std::uint8_t seed) {
  std::vector<std::byte> data(len);
  nic.memory().read(va, data);
  for (std::size_t i = 0; i < len; ++i) {
    if (data[i] != std::byte(static_cast<std::uint8_t>(seed + i * 13))) {
      return false;
    }
  }
  return true;
}

/// Connects vi on node 0 to vi on node 1 (helpers used inside programs).
void clientConnect(Provider& nic, Vi* vi) {
  ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
            VipResult::VIP_SUCCESS);
}

void serverAccept(Provider& nic, Vi* vi) {
  PendingConn conn;
  ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
            VipResult::VIP_SUCCESS);
  ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
}

Vi* makeVi(Provider& nic, mem::PtagId ptag,
           nic::Reliability rel = nic::Reliability::ReliableDelivery,
           Cq* sendCq = nullptr, Cq* recvCq = nullptr) {
  vipl::VipViAttributes va;
  va.ptag = ptag;
  va.reliabilityLevel = rel;
  va.enableRdmaWrite = true;
  Vi* vi = nullptr;
  EXPECT_EQ(vipl::VipCreateVi(nic, va, sendCq, recvCq, vi),
            VipResult::VIP_SUCCESS);
  return vi;
}

// ---------------------------------------------------------------------------
// Parameterized across the three implementation models.
// ---------------------------------------------------------------------------

class ViplAllProfiles : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Profiles, ViplAllProfiles,
                         ::testing::Values("mvia", "bvia", "clan"),
                         [](const auto& paramInfo) { return paramInfo.param; });

TEST_P(ViplAllProfiles, SendRecvPreservesPayload) {
  Cluster cluster(configFor(GetParam()));
  const std::size_t kBytes = 3000;
  bool verified = false;

  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kBytes);
    fillPattern(nic, buf.va, kBytes, 42);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    VipDescriptor d = VipDescriptor::send(buf.va, buf.handle, kBytes);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
    EXPECT_EQ(done, &d);
    EXPECT_TRUE(d.cs.status.ok());
    EXPECT_EQ(d.cs.length, kBytes);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, kBytes);
    Vi* vi = makeVi(nic, ptag);
    VipDescriptor d = VipDescriptor::recv(buf.va, buf.handle, kBytes);
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &d), VipResult::VIP_SUCCESS);
    serverAccept(nic, vi);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollRecv(vi, done), VipResult::VIP_SUCCESS);
    EXPECT_EQ(done, &d);
    EXPECT_EQ(d.cs.length, kBytes);
    EXPECT_TRUE(checkPattern(nic, buf.va, kBytes, 42));
    verified = true;
  };
  cluster.run({client, server});
  EXPECT_TRUE(verified);
}

class ViplSizeSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sizes, ViplSizeSweep,
    ::testing::Combine(::testing::Values("mvia", "bvia", "clan"),
                       ::testing::Values(0, 1, 4, 1499, 1500, 1501, 4096,
                                         8193, 30000, 65000)),
    [](const auto& paramInfo) {
      return std::get<0>(paramInfo.param) + "_" +
             std::to_string(std::get<1>(paramInfo.param)) + "B";
    });

TEST_P(ViplSizeSweep, FragmentationReassemblyIntegrity) {
  const auto [profile, size] = GetParam();
  Cluster cluster(configFor(profile));
  bool verified = false;

  auto client = [&, size = size](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, std::max<std::size_t>(size, 4));
    fillPattern(nic, buf.va, size, 7);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    VipDescriptor d = VipDescriptor::send(buf.va, buf.handle,
                                          static_cast<std::uint32_t>(size));
    if (size == 0) d.ds.clear();
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
  };
  auto server = [&, size = size](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, std::max<std::size_t>(size, 4));
    Vi* vi = makeVi(nic, ptag);
    VipDescriptor d = VipDescriptor::recv(buf.va, buf.handle,
                                          static_cast<std::uint32_t>(size));
    if (size == 0) d.ds.clear();
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &d), VipResult::VIP_SUCCESS);
    serverAccept(nic, vi);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollRecv(vi, done), VipResult::VIP_SUCCESS);
    EXPECT_EQ(d.cs.length, size);
    EXPECT_TRUE(checkPattern(nic, buf.va, size, 7));
    verified = true;
  };
  cluster.run({client, server});
  EXPECT_TRUE(verified);
}

// ---------------------------------------------------------------------------
// Feature tests (run on one representative profile each unless noted).
// ---------------------------------------------------------------------------

TEST(ViplTest, ImmediateDataTravelsInControlSegment) {
  Cluster cluster(configFor("clan"));
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    VipDescriptor d = VipDescriptor::sendImmediate(0xDEADBEEF);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 16);
    Vi* vi = makeVi(nic, ptag);
    VipDescriptor d = VipDescriptor::recv(buf.va, buf.handle, 16);
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &d), VipResult::VIP_SUCCESS);
    serverAccept(nic, vi);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollRecv(vi, done), VipResult::VIP_SUCCESS);
    EXPECT_TRUE(d.hasImmediate());
    EXPECT_EQ(d.cs.immediateData, 0xDEADBEEFu);
    EXPECT_EQ(d.cs.length, 0u);
  };
  cluster.run({client, server});
}

TEST(ViplTest, MultiSegmentGatherScatter) {
  Cluster cluster(configFor("bvia"));
  const std::size_t kBytes = 6000;
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf a = makeBuf(nic, ptag, 2500);
    Buf b = makeBuf(nic, ptag, 3500);
    fillPattern(nic, a.va, 2500, 1);
    fillPattern(nic, b.va, 3500, static_cast<std::uint8_t>(1 + 2500 * 13));
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    VipDescriptor d;
    d.ds = {{a.va, a.handle, 2500}, {b.va, b.handle, 3500}};
    d.cs.segCount = 2;
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf x = makeBuf(nic, ptag, 1000);
    Buf y = makeBuf(nic, ptag, 5000);
    Vi* vi = makeVi(nic, ptag);
    VipDescriptor d;
    d.ds = {{x.va, x.handle, 1000}, {y.va, y.handle, 5000}};
    d.cs.segCount = 2;
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &d), VipResult::VIP_SUCCESS);
    serverAccept(nic, vi);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollRecv(vi, done), VipResult::VIP_SUCCESS);
    EXPECT_EQ(d.cs.length, kBytes);
    // The pattern continues across the scatter boundary.
    EXPECT_TRUE(checkPattern(nic, x.va, 1000, 1));
    EXPECT_TRUE(checkPattern(nic, y.va, 5000,
                             static_cast<std::uint8_t>(1 + 1000 * 13)));
  };
  cluster.run({client, server});
}

TEST(ViplTest, BlockingWaitDeliversAndTimesOut) {
  Cluster cluster(configFor("mvia"));
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    // Nothing should arrive yet: recvWait must time out.
    VipDescriptor* done = nullptr;
    EXPECT_EQ(nic.recvWait(vi, sim::usec(50), done), VipResult::VIP_TIMEOUT);
    VipDescriptor r = VipDescriptor::recv(buf.va, buf.handle, 64);
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &r), VipResult::VIP_SUCCESS);
    VipDescriptor s = VipDescriptor::send(buf.va, buf.handle, 16);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &s), VipResult::VIP_SUCCESS);
    ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    EXPECT_EQ(done, &r);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Vi* vi = makeVi(nic, ptag);
    VipDescriptor r = VipDescriptor::recv(buf.va, buf.handle, 64);
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &r), VipResult::VIP_SUCCESS);
    serverAccept(nic, vi);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    VipDescriptor s = VipDescriptor::send(buf.va, buf.handle, 16);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &s), VipResult::VIP_SUCCESS);
    ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
  };
  cluster.run({client, server});
}

TEST(ViplTest, CompletionQueueMergesBothVis) {
  Cluster cluster(configFor("clan"));
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    for (int i = 0; i < 3; ++i) {
      VipDescriptor s = VipDescriptor::send(buf.va, buf.handle, 8);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &s), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
    }
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Cq* cq = nullptr;
    ASSERT_EQ(vipl::VipCreateCQ(nic, 16, cq), VipResult::VIP_SUCCESS);
    Vi* vi = makeVi(nic, ptag, nic::Reliability::ReliableDelivery, nullptr,
                    cq);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < 3; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(buf.va + 8 * i, buf.handle, 8)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs.back().get()),
                VipResult::VIP_SUCCESS);
    }
    serverAccept(nic, vi);
    for (int i = 0; i < 3; ++i) {
      Vi* doneVi = nullptr;
      bool isRecv = false;
      ASSERT_EQ(nic.pollCq(cq, doneVi, isRecv), VipResult::VIP_SUCCESS);
      EXPECT_EQ(doneVi, vi);
      EXPECT_TRUE(isRecv);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvDone(doneVi, done), VipResult::VIP_SUCCESS);
      EXPECT_EQ(done, recvs[i].get());
    }
    ASSERT_EQ(vipl::VipDestroyVi(nic, vi), VipResult::VIP_INVALID_STATE);
  };
  cluster.run({client, server});
}

TEST(ViplTest, RecvNotifyHandlerConsumesCompletion) {
  Cluster cluster(configFor("clan"));
  bool handlerRan = false;
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    VipDescriptor s = VipDescriptor::send(buf.va, buf.handle, 8);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &s), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Vi* vi = makeVi(nic, ptag);
    VipDescriptor r = VipDescriptor::recv(buf.va, buf.handle, 64);
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &r), VipResult::VIP_SUCCESS);
    auto signal = std::make_shared<sim::Signal>(env.engine);
    ASSERT_EQ(nic.recvNotify(vi,
                             [&, signal](VipDescriptor* desc) {
                               handlerRan = true;
                               EXPECT_EQ(desc, &r);
                               signal->notifyAll();
                             }),
              VipResult::VIP_SUCCESS);
    serverAccept(nic, vi);
    env.self.await(*signal);
    // The completion was consumed by the handler, not the done queue.
    VipDescriptor* done = nullptr;
    EXPECT_EQ(nic.recvDone(vi, done), VipResult::VIP_NOT_DONE);
  };
  cluster.run({client, server});
  EXPECT_TRUE(handlerRan);
}

TEST(ViplTest, RdmaWriteWithImmediatePlacesDataRemotely) {
  Cluster cluster(configFor("clan"));
  const std::size_t kBytes = 5000;
  mem::VirtAddr target = 0;
  mem::MemHandle targetH = 0;
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf src = makeBuf(nic, ptag, kBytes);
    fillPattern(nic, src.va, kBytes, 99);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    VipDescriptor d = VipDescriptor::rdmaWrite(src.va, src.handle, kBytes,
                                               target, targetH);
    d.cs.control |= vipl::VIP_CONTROL_IMMEDIATE;
    d.cs.immediateData = 77;
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf dst = makeBuf(nic, ptag, kBytes, /*rdma=*/true);
    target = dst.va;
    targetH = dst.handle;
    Vi* vi = makeVi(nic, ptag);
    VipDescriptor r;  // zero-segment descriptor to absorb the immediate
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &r), VipResult::VIP_SUCCESS);
    serverAccept(nic, vi);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollRecv(vi, done), VipResult::VIP_SUCCESS);
    EXPECT_TRUE(r.hasImmediate());
    EXPECT_EQ(r.cs.immediateData, 77u);
    EXPECT_TRUE(checkPattern(nic, dst.va, kBytes, 99));
  };
  cluster.run({client, server});
}

TEST(ViplTest, RdmaReadFetchesRemoteMemory) {
  // RDMA read is optional in VIA; none of the paper's three systems
  // implement it. Exercise it with a custom profile.
  ClusterConfig cfg = configFor("clan");
  cfg.profile.supportsRdmaRead = true;
  Cluster cluster(cfg);
  const std::size_t kBytes = 9000;
  mem::VirtAddr source = 0;
  mem::MemHandle sourceH = 0;
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf dst = makeBuf(nic, ptag, kBytes);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    va.enableRdmaRead = true;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    clientConnect(nic, vi);
    VipDescriptor d = VipDescriptor::rdmaRead(dst.va, dst.handle, kBytes,
                                              source, sourceH);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
    EXPECT_TRUE(checkPattern(nic, dst.va, kBytes, 33));
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf src = makeBuf(nic, ptag, kBytes, /*rdma=*/true);
    fillPattern(nic, src.va, kBytes, 33);
    source = src.va;
    sourceH = src.handle;
    Vi* vi = makeVi(nic, ptag);
    serverAccept(nic, vi);
    // Stay alive long enough to serve the read.
    env.self.advance(sim::msec(5), sim::CpuUse::Idle);
  };
  cluster.run({client, server});
}

TEST(ViplTest, PostErrorsAreReported) {
  Cluster cluster(configFor("bvia"));
  auto program = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Vi* vi = makeVi(nic, ptag);

    // Send on an unconnected VI.
    VipDescriptor s = VipDescriptor::send(buf.va, buf.handle, 8);
    EXPECT_EQ(vipl::VipPostSend(nic, vi, &s), VipResult::VIP_INVALID_STATE);

    // Bad handle / range / foreign ptag.
    VipDescriptor bad = VipDescriptor::send(buf.va, 9999, 8);
    EXPECT_EQ(vipl::VipPostRecv(nic, vi, &bad),
              VipResult::VIP_PROTECTION_ERROR);
    VipDescriptor tooLong = VipDescriptor::send(buf.va, buf.handle, 65);
    EXPECT_EQ(vipl::VipPostRecv(nic, vi, &tooLong),
              VipResult::VIP_PROTECTION_ERROR);

    // RDMA write is unsupported on the BVIA model.
    VipDescriptor w =
        VipDescriptor::rdmaWrite(buf.va, buf.handle, 8, buf.va, buf.handle);
    EXPECT_EQ(vipl::VipPostRecv(nic, vi, &w), VipResult::VIP_SUCCESS);

    // RDMA read on a VI without the attribute.
    vipl::VipNicAttributes attrs;
    EXPECT_EQ(vipl::VipQueryNic(nic, attrs), VipResult::VIP_SUCCESS);
    EXPECT_FALSE(attrs.rdmaWriteSupport);
    EXPECT_FALSE(attrs.rdmaReadSupport);
  };
  cluster.run({program, nullptr});
}

TEST(ViplTest, PostBeyondMaxTransferSizeRejected) {
  // clan negotiates a 64 KiB MaxTransferSize; a larger message must be
  // rejected at post time, while bvia (32 MiB) accepts it.
  for (const char* name : {"clan", "bvia"}) {
    Cluster cluster(configFor(name));
    const bool expectAccept = std::string(name) == "bvia";
    auto client = [&](NodeEnv& env) {
      Provider& nic = env.nic;
      auto ptag = vipl::VipCreatePtag(nic);
      Buf buf = makeBuf(nic, ptag, 200000);
      Vi* vi = makeVi(nic, ptag);
      clientConnect(nic, vi);
      VipDescriptor d = VipDescriptor::send(buf.va, buf.handle, 200000);
      const VipResult r = vipl::VipPostSend(nic, vi, &d);
      if (expectAccept) {
        ASSERT_EQ(r, VipResult::VIP_SUCCESS);
        VipDescriptor* done = nullptr;
        ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
      } else {
        EXPECT_EQ(r, VipResult::VIP_INVALID_MTU);
      }
    };
    auto server = [&](NodeEnv& env) {
      Provider& nic = env.nic;
      auto ptag = vipl::VipCreatePtag(nic);
      Buf buf = makeBuf(nic, ptag, 200000);
      Vi* vi = makeVi(nic, ptag);
      VipDescriptor d = VipDescriptor::recv(buf.va, buf.handle, 200000);
      const VipResult r = vipl::VipPostRecv(nic, vi, &d);
      serverAccept(nic, vi);
      if (expectAccept && r == VipResult::VIP_SUCCESS) {
        VipDescriptor* done = nullptr;
        ASSERT_EQ(nic.pollRecv(vi, done), VipResult::VIP_SUCCESS);
        EXPECT_EQ(d.cs.length, 200000u);
      }
    };
    cluster.run({client, server});
  }
}

TEST(ViplTest, OversizeMessageCompletesRecvWithLengthError) {
  Cluster cluster(configFor("clan"));
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 256);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    VipDescriptor s = VipDescriptor::send(buf.va, buf.handle, 256);
    ASSERT_EQ(vipl::VipPostSend(nic, vi, &s), VipResult::VIP_SUCCESS);
    VipDescriptor* done = nullptr;
    // Reliable delivery: the remote length error breaks the connection,
    // so the send completes with an error status.
    EXPECT_EQ(nic.pollSend(vi, done), VipResult::VIP_DESCRIPTOR_ERROR);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Vi* vi = makeVi(nic, ptag);
    VipDescriptor r = VipDescriptor::recv(buf.va, buf.handle, 64);
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &r), VipResult::VIP_SUCCESS);
    serverAccept(nic, vi);
    VipDescriptor* done = nullptr;
    EXPECT_EQ(nic.pollRecv(vi, done), VipResult::VIP_DESCRIPTOR_ERROR);
    EXPECT_EQ(r.cs.status.error, nic::WorkStatus::LengthError);
  };
  cluster.run({client, server});
}

TEST(ViplTest, DisconnectFlushesOutstandingDescriptors) {
  Cluster cluster(configFor("clan"));
  bool remoteSawError = false;
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    env.self.advance(sim::usec(200));
    ASSERT_EQ(vipl::VipDisconnect(nic, vi), VipResult::VIP_SUCCESS);
    EXPECT_EQ(vi->state(), ViState::Idle);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    nic.setErrorCallback([&](Vi*, nic::WorkStatus why) {
      remoteSawError = true;
      EXPECT_EQ(why, nic::WorkStatus::ConnectionLost);
    });
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Vi* vi = makeVi(nic, ptag);
    VipDescriptor r = VipDescriptor::recv(buf.va, buf.handle, 64);
    ASSERT_EQ(vipl::VipPostRecv(nic, vi, &r), VipResult::VIP_SUCCESS);
    serverAccept(nic, vi);
    VipDescriptor* done = nullptr;
    // The flush completes the posted recv with an error status.
    EXPECT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_DESCRIPTOR_ERROR);
    EXPECT_EQ(r.cs.status.error, nic::WorkStatus::Aborted);
    EXPECT_EQ(vi->state(), ViState::Disconnected);
  };
  cluster.run({client, server});
  EXPECT_TRUE(remoteSawError);
}

TEST(ViplTest, ConnectionRejectAndNoMatch) {
  Cluster cluster(configFor("mvia"));
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Vi* vi = makeVi(nic, ptag);
    // Nobody listens on discriminator 1234.
    EXPECT_EQ(vipl::VipConnectRequest(nic, vi, {1, 1234}, kTimeout),
              VipResult::VIP_NO_MATCH);
    EXPECT_EQ(vi->state(), ViState::Idle);
    // Reliability mismatch: server VI is ReliableDelivery, ours Unreliable.
    Vi* ud = makeVi(nic, ptag, nic::Reliability::Unreliable);
    EXPECT_EQ(vipl::VipConnectRequest(nic, ud, {1, kDisc}, kTimeout),
              VipResult::VIP_INVALID_RELIABILITY_LEVEL);
    // Third attempt is explicitly rejected by the server application.
    EXPECT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_REJECT);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Vi* vi = makeVi(nic, ptag);  // ReliableDelivery
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    EXPECT_EQ(vipl::VipConnectAccept(nic, conn, vi),
              VipResult::VIP_INVALID_RELIABILITY_LEVEL);
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    EXPECT_EQ(vipl::VipConnectReject(nic, conn), VipResult::VIP_SUCCESS);
  };
  cluster.run({client, server});
}

TEST(ViplTest, ConnectWaitTimesOut) {
  Cluster cluster(configFor("clan"));
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    PendingConn conn;
    const sim::SimTime t0 = env.now();
    EXPECT_EQ(vipl::VipConnectWait(nic, {0, kDisc}, sim::usec(500), conn),
              VipResult::VIP_TIMEOUT);
    EXPECT_GE(env.now() - t0, sim::usec(500));
  };
  cluster.run({server, nullptr});
}

// A connect request that lands while a connectWait is parked must be
// claimed by that waiter before its timeout expires, at every reliability
// level the provider can negotiate.
TEST(ViplTest, ConnectRequestArrivingMidWaitIsClaimed) {
  for (const auto rel : {nic::Reliability::ReliableDelivery,
                         nic::Reliability::ReliableReception}) {
    SCOPED_TRACE(rel == nic::Reliability::ReliableDelivery ? "RD" : "RR");
    Cluster cluster(configFor("mvia"));
    auto client = [&](NodeEnv& env) {
      Provider& nic = env.nic;
      auto ptag = vipl::VipCreatePtag(nic);
      Buf buf = makeBuf(nic, ptag, 64);
      Vi* vi = makeVi(nic, ptag, rel);
      // Let the server park in connectWait first, then race the request
      // into the middle of its window.
      env.self.advance(sim::msec(1), sim::CpuUse::Idle);
      ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
                VipResult::VIP_SUCCESS);
      fillPattern(nic, buf.va, 32, 0x21);
      VipDescriptor s = VipDescriptor::send(buf.va, buf.handle, 32);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &s), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      EXPECT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    };
    auto server = [&](NodeEnv& env) {
      Provider& nic = env.nic;
      auto ptag = vipl::VipCreatePtag(nic);
      Buf buf = makeBuf(nic, ptag, 64);
      Vi* vi = makeVi(nic, ptag, rel);
      VipDescriptor r = VipDescriptor::recv(buf.va, buf.handle, 64);
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, &r), VipResult::VIP_SUCCESS);
      PendingConn conn;
      const sim::SimTime t0 = env.now();
      ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, sim::msec(10), conn),
                VipResult::VIP_SUCCESS);
      EXPECT_LT(env.now() - t0, sim::msec(10));
      ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      EXPECT_TRUE(checkPattern(nic, buf.va, 32, 0x21));
    };
    cluster.run({client, server});
  }
}

// The other side of the race: the request arrives just after connectWait
// timed out. It must not be dropped — the provider parks it under the
// connect-request grace window, and the next connectWait claims it.
TEST(ViplTest, ConnectRequestAfterWaitTimeoutIsClaimedByNextWait) {
  for (const auto rel : {nic::Reliability::ReliableDelivery,
                         nic::Reliability::ReliableReception}) {
    SCOPED_TRACE(rel == nic::Reliability::ReliableDelivery ? "RD" : "RR");
    Cluster cluster(configFor("bvia"));
    auto client = [&](NodeEnv& env) {
      Provider& nic = env.nic;
      auto ptag = vipl::VipCreatePtag(nic);
      Vi* vi = makeVi(nic, ptag, rel);
      // Aim the request into the gap between the server's two waits (it
      // leaves ~connectLocalCost after this point, around t=460us).
      env.self.advance(sim::usec(200), sim::CpuUse::Idle);
      ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
                VipResult::VIP_SUCCESS);
      EXPECT_EQ(vi->state(), ViState::Connected);
    };
    auto server = [&](NodeEnv& env) {
      Provider& nic = env.nic;
      auto ptag = vipl::VipCreatePtag(nic);
      Vi* vi = makeVi(nic, ptag, rel);
      PendingConn conn;
      EXPECT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, sim::usec(100), conn),
                VipResult::VIP_TIMEOUT);
      // The request lands around t=460us with nobody waiting. Come back
      // well within the grace window and claim it from the queue.
      env.self.advance(sim::msec(1), sim::CpuUse::Idle);
      const sim::SimTime t0 = env.now();
      ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
                VipResult::VIP_SUCCESS);
      // Claimed from the queue, not re-sent: no round trip, so no delay.
      EXPECT_LT(env.now() - t0, sim::usec(100));
      ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);
      EXPECT_EQ(vi->state(), ViState::Connected);
    };
    cluster.run({client, server});
  }
}

// Regression: the connection-error callback is delivered from a zero-delay
// event, so a handler may tear the VI down (resetVi, destroyVi) without
// re-entering the control path that noticed the failure. Before the
// deferral this corrupted provider state.
TEST(ViplTest, ErrorCallbackMayResetAndDestroyTheFailedVi) {
  Cluster cluster(configFor("clan"));
  int callbacks = 0;
  bool reconnected = false;
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Vi* a = makeVi(nic, ptag);
    Vi* b = makeVi(nic, ptag);
    ASSERT_EQ(vipl::VipConnectRequest(nic, a, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, b, {1, kDisc + 1}, kTimeout),
              VipResult::VIP_SUCCESS);
    env.self.advance(sim::usec(200));
    ASSERT_EQ(vipl::VipDisconnect(nic, a), VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipDisconnect(nic, b), VipResult::VIP_SUCCESS);
    // Give the server time to observe both failures, then prove the VI it
    // reset inside the callback is connectable again.
    env.self.advance(sim::msec(1), sim::CpuUse::Idle);
    ASSERT_EQ(vipl::VipConnectRequest(nic, a, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    reconnected = true;
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Vi* va = makeVi(nic, ptag);
    Vi* vb = makeVi(nic, ptag);
    nic.setErrorCallback([&](Vi* vi, nic::WorkStatus why) {
      EXPECT_EQ(why, nic::WorkStatus::ConnectionLost);
      EXPECT_EQ(vi->state(), ViState::Disconnected);
      if (vi == va) {
        EXPECT_EQ(vipl::VipResetVi(nic, vi), VipResult::VIP_SUCCESS);
        EXPECT_EQ(vi->state(), ViState::Idle);
      } else {
        EXPECT_EQ(vi, vb);
        EXPECT_EQ(vipl::VipDestroyVi(nic, vi), VipResult::VIP_SUCCESS);
      }
      ++callbacks;
    });
    serverAccept(nic, va);
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc + 1}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vb), VipResult::VIP_SUCCESS);
    // Park until both disconnects have been noticed and the deferred
    // callbacks delivered (each VipDisconnect charges a teardown on the
    // client first), then accept the client's second connect on the
    // freshly reset VI.
    env.self.advance(sim::msec(2), sim::CpuUse::Idle);
    EXPECT_EQ(callbacks, 2);
    serverAccept(nic, va);
    EXPECT_EQ(va->state(), ViState::Connected);
  };
  cluster.run({client, server});
  EXPECT_EQ(callbacks, 2);
  EXPECT_TRUE(reconnected);
}

TEST(ViplTest, CqOverflowIsReported) {
  Cluster cluster(configFor("clan"));
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    for (int i = 0; i < 4; ++i) {
      VipDescriptor s = VipDescriptor::send(buf.va, buf.handle, 4);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &s), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
    }
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 64);
    Cq* cq = nullptr;
    ASSERT_EQ(vipl::VipCreateCQ(nic, 2, cq), VipResult::VIP_SUCCESS);
    Vi* vi = makeVi(nic, ptag, nic::Reliability::ReliableDelivery, nullptr,
                    cq);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < 4; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(buf.va, buf.handle, 16)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs.back().get()),
                VipResult::VIP_SUCCESS);
    }
    serverAccept(nic, vi);
    // Let all four completions arrive without reaping: 2 fit, 2 overflow.
    env.self.advance(sim::msec(2), sim::CpuUse::Idle);
    Vi* doneVi = nullptr;
    bool isRecv = false;
    EXPECT_EQ(nic.cqDone(cq, doneVi, isRecv), VipResult::VIP_ERROR_RESOURCE);
    EXPECT_EQ(nic.cqDone(cq, doneVi, isRecv), VipResult::VIP_SUCCESS);
  };
  cluster.run({client, server});
}

TEST(ViplTest, QueryAndSetViAttributes) {
  Cluster cluster(configFor("clan"));
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Vi* vi = makeVi(nic, ptag, nic::Reliability::Unreliable);

    vipl::ViState state;
    vipl::VipViAttributes attrs;
    bool sendEmpty = false;
    bool recvEmpty = false;
    ASSERT_EQ(vipl::VipQueryVi(nic, vi, state, attrs, sendEmpty, recvEmpty),
              VipResult::VIP_SUCCESS);
    EXPECT_EQ(state, ViState::Idle);
    EXPECT_EQ(attrs.reliabilityLevel, nic::Reliability::Unreliable);
    EXPECT_TRUE(sendEmpty);
    EXPECT_TRUE(recvEmpty);

    // Retune before connecting: allowed while Idle.
    attrs.reliabilityLevel = nic::Reliability::ReliableDelivery;
    attrs.maxTransferSize = 1u << 30;  // clamped to the NIC limit
    ASSERT_EQ(vipl::VipSetViAttributes(nic, vi, attrs),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipQueryVi(nic, vi, state, attrs, sendEmpty, recvEmpty),
              VipResult::VIP_SUCCESS);
    EXPECT_EQ(attrs.reliabilityLevel, nic::Reliability::ReliableDelivery);
    EXPECT_EQ(attrs.maxTransferSize, nic.profile().maxTransferSize);

    clientConnect(nic, vi);
    EXPECT_EQ(vipl::VipSetViAttributes(nic, vi, attrs),
              VipResult::VIP_INVALID_STATE);
    ASSERT_EQ(vipl::VipQueryVi(nic, vi, state, attrs, sendEmpty, recvEmpty),
              VipResult::VIP_SUCCESS);
    EXPECT_EQ(state, ViState::Connected);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Vi* vi = makeVi(nic, ptag);
    serverAccept(nic, vi);
  };
  cluster.run({client, server});
}

TEST(ViplTest, NameServiceResolvesClusterHosts) {
  Cluster cluster(configFor("clan"));
  auto program = [&](NodeEnv& env) {
    fabric::NodeId node = 99;
    EXPECT_EQ(vipl::VipNSGetHostByName(env.nic, "node1", node),
              VipResult::VIP_SUCCESS);
    EXPECT_EQ(node, 1u);
    EXPECT_EQ(vipl::VipNSGetHostByName(env.nic, "nonesuch", node),
              VipResult::VIP_ERROR_NAMESERVICE);
  };
  cluster.run({program, nullptr});
}

TEST(ViplTest, ReconnectAfterDisconnectWorks) {
  Cluster cluster(configFor("clan"));
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Vi* vi = makeVi(nic, ptag);
    for (int round = 0; round < 3; ++round) {
      ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
                VipResult::VIP_SUCCESS);
      ASSERT_EQ(vipl::VipDisconnect(nic, vi), VipResult::VIP_SUCCESS);
    }
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    for (int round = 0; round < 3; ++round) {
      Vi* vi = makeVi(nic, ptag);
      serverAccept(nic, vi);
      while (vi->state() == ViState::Connected) {
        env.self.advance(sim::usec(20), sim::CpuUse::Idle);
      }
      ASSERT_EQ(vipl::VipDestroyVi(nic, vi), VipResult::VIP_SUCCESS);
    }
  };
  cluster.run({client, server});
}

TEST(ViplTest, QueuedCompletionsReapInFifoOrder) {
  Cluster cluster(configFor("bvia"));
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 256);
    Vi* vi = makeVi(nic, ptag);
    clientConnect(nic, vi);
    std::vector<std::unique_ptr<VipDescriptor>> sends;
    for (int i = 0; i < 5; ++i) {
      sends.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::send(buf.va, buf.handle, 32)));
      ASSERT_EQ(vipl::VipPostSend(nic, vi, sends.back().get()),
                VipResult::VIP_SUCCESS);
    }
    for (int i = 0; i < 5; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.pollSend(vi, done), VipResult::VIP_SUCCESS);
      EXPECT_EQ(done, sends[i].get());
    }
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    Buf buf = makeBuf(nic, ptag, 256);
    Vi* vi = makeVi(nic, ptag);
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    for (int i = 0; i < 5; ++i) {
      recvs.push_back(std::make_unique<VipDescriptor>(
          VipDescriptor::recv(buf.va + 32 * i, buf.handle, 32)));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, recvs.back().get()),
                VipResult::VIP_SUCCESS);
    }
    serverAccept(nic, vi);
    for (int i = 0; i < 5; ++i) {
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.pollRecv(vi, done), VipResult::VIP_SUCCESS);
      EXPECT_EQ(done, recvs[i].get());
    }
  };
  cluster.run({client, server});
}

}  // namespace
}  // namespace vibe
