// Seeded randomized stress tests: long streams of random-sized messages
// with random descriptor shapes, interleaved control-plane churn, and loss.
// Deterministic per seed (the simulator has no hidden entropy), so any
// failure is replayable. Invariants: no deadlock, exactly-once in-order
// delivery on reliable connections, every delivered payload intact.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "simcore/prng.hpp"
#include "test_seed.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using vipl::PendingConn;
using vipl::Provider;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;

constexpr std::uint64_t kDisc = 77;
constexpr sim::Duration kTimeout = sim::kSecond * 30;

/// Message payload: [u32 length][u8 seed][pattern...], self-verifying.
void fillMessage(Provider& nic, mem::VirtAddr va, std::uint32_t len,
                 std::uint8_t seed) {
  std::vector<std::byte> data(len);
  if (len >= 5) {
    std::memcpy(data.data(), &len, 4);
    data[4] = std::byte(seed);
    for (std::uint32_t i = 5; i < len; ++i) {
      data[i] = std::byte(static_cast<std::uint8_t>(seed ^ (i * 131)));
    }
  }
  nic.memory().write(va, data);
}

bool verifyMessage(Provider& nic, mem::VirtAddr va, std::uint32_t len) {
  if (len < 5) return true;
  std::vector<std::byte> data(len);
  nic.memory().read(va, data);
  std::uint32_t storedLen = 0;
  std::memcpy(&storedLen, data.data(), 4);
  if (storedLen != len) return false;
  const auto seed = static_cast<std::uint8_t>(data[4]);
  for (std::uint32_t i = 5; i < len; ++i) {
    if (data[i] != std::byte(static_cast<std::uint8_t>(seed ^ (i * 131)))) {
      return false;
    }
  }
  return true;
}

struct FuzzParams {
  std::string profile;
  std::uint64_t seed;
  double loss;
  nic::Reliability rel;
  int messages;
};

class FuzzStream : public ::testing::TestWithParam<FuzzParams> {};

// Seeds are testRunSeed() + k: pinned by default, shiftable as a family
// via VIBE_TEST_SEED, and the effective seed lands in the test name so a
// failing case is replayable from the gtest output alone.
INSTANTIATE_TEST_SUITE_P(
    Streams, FuzzStream,
    ::testing::Values(
        FuzzParams{"mvia", vibe::testing::testRunSeed() + 1, 0.0,
                   nic::Reliability::ReliableDelivery, 60},
        FuzzParams{"mvia", vibe::testing::testRunSeed() + 2, 0.05,
                   nic::Reliability::ReliableDelivery, 40},
        FuzzParams{"bvia", vibe::testing::testRunSeed() + 3, 0.0,
                   nic::Reliability::ReliableReception, 60},
        FuzzParams{"bvia", vibe::testing::testRunSeed() + 4, 0.08,
                   nic::Reliability::ReliableDelivery, 40},
        FuzzParams{"clan", vibe::testing::testRunSeed() + 5, 0.0,
                   nic::Reliability::ReliableDelivery, 80},
        FuzzParams{"clan", vibe::testing::testRunSeed() + 6, 0.10,
                   nic::Reliability::ReliableReception, 40},
        FuzzParams{"clan", vibe::testing::testRunSeed() + 7, 0.02,
                   nic::Reliability::ReliableDelivery, 60}),
    [](const auto& pi) {
      return pi.param.profile + "_s" + std::to_string(pi.param.seed);
    });

TEST_P(FuzzStream, RandomTrafficDeliversExactlyOnceInOrder) {
  const FuzzParams& fp = GetParam();
  ClusterConfig cc;
  cc.profile = nic::profileByName(fp.profile);
  cc.lossRate = fp.loss;
  cc.seed = fp.seed;
  Cluster cluster(cc);

  // Pre-draw the whole random schedule so both sides agree on it.
  sim::Xoshiro256 rng(fp.seed, "fuzz");
  struct Msg {
    std::uint32_t bytes;
    std::uint8_t seed;
    int segments;
    bool immediate;
    std::uint32_t senderPauseUs;
    std::uint32_t receiverPauseUs;
  };
  std::vector<Msg> schedule;
  const std::uint32_t maxBytes =
      std::min<std::uint32_t>(60000, cc.profile.maxTransferSize);
  for (int i = 0; i < fp.messages; ++i) {
    Msg m;
    // Mix tiny, fragment-boundary, and large sizes.
    switch (rng.below(4)) {
      case 0: m.bytes = static_cast<std::uint32_t>(rng.below(64) + 5); break;
      case 1:
        m.bytes = cc.profile.mtu + static_cast<std::uint32_t>(rng.below(7)) - 3;
        break;
      case 2: m.bytes = static_cast<std::uint32_t>(rng.below(8192) + 5); break;
      default:
        m.bytes = static_cast<std::uint32_t>(rng.below(maxBytes - 5) + 5);
    }
    m.seed = static_cast<std::uint8_t>(rng.below(256));
    m.segments = static_cast<int>(rng.below(4)) + 1;
    m.immediate = rng.chance(0.2);
    m.senderPauseUs = static_cast<std::uint32_t>(rng.below(120));
    m.receiverPauseUs = static_cast<std::uint32_t>(rng.below(120));
    schedule.push_back(m);
  }

  int delivered = 0;
  auto makeDesc = [&](mem::VirtAddr va, mem::MemHandle h, const Msg& m) {
    VipDescriptor d;
    std::uint32_t left = m.bytes;
    std::uint32_t off = 0;
    const auto segs = static_cast<std::uint32_t>(m.segments);
    for (std::uint32_t sIdx = 0; sIdx < segs; ++sIdx) {
      const std::uint32_t chunk =
          sIdx + 1 == segs ? left : std::max<std::uint32_t>(1, m.bytes / segs);
      if (chunk == 0 || left == 0) break;
      const std::uint32_t take = std::min(chunk, left);
      d.ds.push_back({va + off, h, take});
      off += take;
      left -= take;
    }
    d.cs.segCount = static_cast<std::uint16_t>(d.ds.size());
    if (m.immediate) {
      d.cs.control |= vipl::VIP_CONTROL_IMMEDIATE;
      d.cs.immediateData = m.seed;
    }
    return d;
  };

  auto sender = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    const mem::VirtAddr buf = nic.memory().alloc(maxBytes, mem::kPageSize);
    mem::MemHandle h = 0;
    ASSERT_EQ(vipl::VipRegisterMem(nic, buf, maxBytes, {ptag, false, false},
                                   h),
              VipResult::VIP_SUCCESS);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = fp.rel;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
              VipResult::VIP_SUCCESS);
    for (const Msg& m : schedule) {
      env.self.advance(sim::usec(m.senderPauseUs), sim::CpuUse::Idle);
      fillMessage(nic, buf, m.bytes, m.seed);
      VipDescriptor d = makeDesc(buf, h, m);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
    }
  };

  auto receiver = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    // One arena slice per scheduled message, all descriptors preposted —
    // reliable VIA requires receives to be there before the data, and the
    // sender's pacing gives no usable repost window.
    const std::uint64_t arenaBytes =
        static_cast<std::uint64_t>(maxBytes) * schedule.size();
    const mem::VirtAddr arena = nic.memory().alloc(arenaBytes, mem::kPageSize);
    mem::MemHandle h = 0;
    ASSERT_EQ(vipl::VipRegisterMem(nic, arena, arenaBytes,
                                   {ptag, false, false}, h),
              VipResult::VIP_SUCCESS);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = fp.rel;
    Vi* vi = nullptr;
    ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
              VipResult::VIP_SUCCESS);
    std::vector<std::unique_ptr<VipDescriptor>> descs;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      descs.push_back(std::make_unique<VipDescriptor>(
          makeDesc(arena + i * maxBytes, h, schedule[i])));
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, descs.back().get()),
                VipResult::VIP_SUCCESS);
    }
    PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi), VipResult::VIP_SUCCESS);

    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const Msg& m = schedule[i];
      env.self.advance(sim::usec(m.receiverPauseUs), sim::CpuUse::Idle);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS)
          << "message " << i;
      EXPECT_EQ(done, descs[i].get()) << "completion out of order at " << i;
      EXPECT_EQ(done->cs.length, m.bytes) << "message " << i;
      EXPECT_TRUE(verifyMessage(nic, arena + i * maxBytes, m.bytes))
          << "message " << i;
      if (m.immediate) {
        EXPECT_TRUE(done->hasImmediate());
        EXPECT_EQ(done->cs.immediateData, m.seed);
      }
      ++delivered;
    }
    // Exactly once: nothing further may arrive.
    VipDescriptor* extra = nullptr;
    EXPECT_EQ(nic.recvDone(vi, extra), VipResult::VIP_NOT_DONE);
  };

  cluster.run({sender, receiver});
  EXPECT_EQ(delivered, fp.messages);
}

TEST(FuzzControlPlane, ViChurnWithTrafficSurvives) {
  // Random create/connect/transfer/disconnect/destroy cycles.
  const std::uint64_t seed = vibe::testing::testRunSeed() + 99;
  ClusterConfig cc;
  cc.profile = nic::clanProfile();
  cc.seed = seed;
  Cluster cluster(cc);
  sim::Xoshiro256 rng(seed, "churn");
  constexpr int kRounds = 25;
  // Pre-draw per-round message sizes.
  std::vector<std::uint32_t> sizes;
  for (int i = 0; i < kRounds; ++i) {
    sizes.push_back(static_cast<std::uint32_t>(rng.below(20000) + 8));
  }

  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    const mem::VirtAddr buf = nic.memory().alloc(32768, mem::kPageSize);
    mem::MemHandle h = 0;
    ASSERT_EQ(vipl::VipRegisterMem(nic, buf, 32768, {ptag, false, false}, h),
              VipResult::VIP_SUCCESS);
    for (int round = 0; round < kRounds; ++round) {
      vipl::VipViAttributes va;
      va.ptag = ptag;
      va.reliabilityLevel = nic::Reliability::ReliableDelivery;
      Vi* vi = nullptr;
      ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
                VipResult::VIP_SUCCESS);
      ASSERT_EQ(vipl::VipConnectRequest(nic, vi, {1, kDisc}, kTimeout),
                VipResult::VIP_SUCCESS);
      fillMessage(nic, buf, sizes[round],
                  static_cast<std::uint8_t>(round));
      VipDescriptor d = VipDescriptor::send(buf, h, sizes[round]);
      ASSERT_EQ(vipl::VipPostSend(nic, vi, &d), VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.sendWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      ASSERT_EQ(vipl::VipDisconnect(nic, vi), VipResult::VIP_SUCCESS);
      ASSERT_EQ(vipl::VipDestroyVi(nic, vi), VipResult::VIP_SUCCESS);
    }
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    const mem::VirtAddr buf = nic.memory().alloc(32768, mem::kPageSize);
    mem::MemHandle h = 0;
    ASSERT_EQ(vipl::VipRegisterMem(nic, buf, 32768, {ptag, false, false}, h),
              VipResult::VIP_SUCCESS);
    for (int round = 0; round < kRounds; ++round) {
      vipl::VipViAttributes va;
      va.ptag = ptag;
      va.reliabilityLevel = nic::Reliability::ReliableDelivery;
      Vi* vi = nullptr;
      ASSERT_EQ(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi),
                VipResult::VIP_SUCCESS);
      VipDescriptor d = VipDescriptor::recv(buf, h, 32768);
      ASSERT_EQ(vipl::VipPostRecv(nic, vi, &d), VipResult::VIP_SUCCESS);
      PendingConn conn;
      ASSERT_EQ(vipl::VipConnectWait(nic, {1, kDisc}, kTimeout, conn),
                VipResult::VIP_SUCCESS);
      ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi),
                VipResult::VIP_SUCCESS);
      VipDescriptor* done = nullptr;
      ASSERT_EQ(nic.recvWait(vi, kTimeout, done), VipResult::VIP_SUCCESS);
      EXPECT_EQ(done->cs.length, sizes[round]);
      EXPECT_TRUE(verifyMessage(nic, buf, sizes[round]));
      // Wait out the client's disconnect, then recycle.
      while (vi->state() == vipl::ViState::Connected) {
        env.self.advance(sim::usec(20), sim::CpuUse::Idle);
      }
      ASSERT_EQ(vipl::VipDestroyVi(nic, vi), VipResult::VIP_SUCCESS);
    }
  };
  cluster.run({client, server});
}

}  // namespace
}  // namespace vibe
