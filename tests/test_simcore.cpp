// Unit tests for the discrete-event engine, processes, signals, resources,
// statistics, and the deterministic PRNG.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "simcore/engine.hpp"
#include "simcore/pdes.hpp"
#include "simcore/process.hpp"
#include "simcore/prng.hpp"
#include "simcore/resource.hpp"
#include "simcore/stats.hpp"
#include "simcore/time.hpp"

namespace vibe::sim {
namespace {

TEST(TimeTest, UsecRoundsToNearestNanosecond) {
  EXPECT_EQ(usec(1.0), 1000);
  EXPECT_EQ(usec(0.19), 190);
  EXPECT_EQ(usec(0.0004), 0);
  EXPECT_EQ(usec(0.0006), 1);
  EXPECT_EQ(msec(1.5), 1'500'000);
}

TEST(TimeTest, TransferTimeMatchesRate) {
  // 100 MB/s -> 10 ns per byte.
  EXPECT_EQ(transferTime(1, 100.0), 10);
  EXPECT_EQ(transferTime(1000, 100.0), 10'000);
  EXPECT_EQ(transferTime(0, 100.0), 0);
  // 125 MB/s (1 Gb/s) -> 8 ns per byte.
  EXPECT_EQ(transferTime(1500, 125.0), 12'000);
}

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.post(30, [&] { order.push_back(3); });
  eng.post(10, [&] { order.push_back(1); });
  eng.post(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    eng.post(5, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine eng;
  int fired = 0;
  EventId id = eng.post(10, [&] { ++fired; });
  eng.post(5, [&] { EXPECT_TRUE(eng.cancel(id)); });
  eng.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(eng.cancel(id));  // already gone
}

TEST(EngineTest, MoveOnlyCallbacksArePostable) {
  // EventFn (unlike std::function) accepts move-only captures, so payloads
  // ride inside the event itself — the fabric layer depends on this.
  Engine eng;
  auto payload = std::make_unique<int>(41);
  int got = 0;
  eng.post(5, [&got, p = std::move(payload)] { got = *p + 1; });
  eng.run();
  EXPECT_EQ(got, 42);
}

TEST(EngineTest, NullCallableThrowsAtPostTime) {
  Engine eng;
  EXPECT_THROW(eng.post(10, std::function<void()>{}), SimError);
  EXPECT_THROW(eng.postAt(10, EventFn{}), SimError);
  EXPECT_THROW(eng.post(10, nullptr), SimError);
  // Nothing leaked into the queue and the engine still runs cleanly.
  EXPECT_EQ(eng.pendingEvents(), 0u);
  eng.run();
  // Cancel of never-issued ids (including the 0 sentinel) is well-defined.
  EXPECT_FALSE(eng.cancel(0));
  EXPECT_FALSE(eng.cancel(12345));
  EXPECT_FALSE(eng.cancel(~EventId{0}));
}

TEST(EngineTest, CancelledEventsDoNotLingerInQueue) {
  // Regression: cancel used to tombstone the queue entry until fire time,
  // so far-future post+cancel cycles grew the queue without bound.
  Engine eng;
  for (int i = 0; i < 100000; ++i) {
    const EventId id = eng.post(1'000'000'000, [] {});
    ASSERT_TRUE(eng.cancel(id));
  }
  EXPECT_EQ(eng.pendingEvents(), 0u);
  EXPECT_LT(eng.queuedHandles(), 200u);  // compaction keeps stale handles small
  EXPECT_LE(eng.poolSlots(), 256u);      // slots recycle; one slab suffices
  eng.run();
  EXPECT_EQ(eng.executedEvents(), 0u);
}

TEST(EngineTest, PostCancelStormStaysBounded) {
  // The reliability layer's retransmit-timer pattern: a live timer per
  // endpoint, constantly rearmed. 1M rearms must not grow queue or pool.
  Engine eng;
  constexpr std::size_t kEndpoints = 32;
  EventId timers[kEndpoints] = {};
  for (int i = 0; i < 1'000'000; ++i) {
    const std::size_t ep = static_cast<std::size_t>(i) % kEndpoints;
    if (timers[ep] != 0) {
      EXPECT_TRUE(eng.cancel(timers[ep]));
    }
    timers[ep] = eng.post(1'000'000 + i, [] {});
  }
  EXPECT_EQ(eng.pendingEvents(), kEndpoints);
  EXPECT_LT(eng.queuedHandles(), 1000u);
  EXPECT_LT(eng.poolSlots(), 1000u);
  eng.run();
  EXPECT_EQ(eng.executedEvents(), kEndpoints);
}

TEST(EngineTest, CancelInsideOwnCallbackReturnsFalse) {
  Engine eng;
  EventId id = 0;
  bool sawFalse = false;
  id = eng.post(10, [&] { sawFalse = !eng.cancel(id); });
  eng.run();
  EXPECT_TRUE(sawFalse);
}

TEST(EngineTest, StaleIdDoesNotCancelRecycledSlot) {
  // Generation tags: after an event fires, its pool slot is recycled; the
  // old id must not cancel the new occupant.
  Engine eng;
  const EventId first = eng.post(1, [] {});
  eng.run();
  EXPECT_FALSE(eng.cancel(first));
  int fired = 0;
  const EventId second = eng.post(1, [&] { ++fired; });
  EXPECT_NE(first, second);        // same slot, new generation
  EXPECT_FALSE(eng.cancel(first)); // stale id is inert
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, PostIntoPastThrows) {
  Engine eng;
  eng.post(10, [&] {
    EXPECT_THROW(eng.postAt(5, [] {}), SimError);
  });
  eng.run();
}

TEST(EngineTest, NestedPostsExecute) {
  Engine eng;
  SimTime innerTime = -1;
  eng.post(10, [&] {
    eng.post(7, [&] { innerTime = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(innerTime, 17);
}

TEST(EngineTest, RunUntilStopsAtHorizon) {
  Engine eng;
  int fired = 0;
  eng.post(10, [&] { ++fired; });
  eng.post(100, [&] { ++fired; });
  EXPECT_FALSE(eng.runUntil(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 50);
  EXPECT_TRUE(eng.runUntil(200));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, RunUntilFiresEventExactlyAtHorizon) {
  Engine eng;
  int fired = 0;
  eng.post(50, [&] { ++fired; });
  EXPECT_TRUE(eng.runUntil(50));  // inclusive horizon; queue drains
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 50);
}

TEST(EngineTest, RunUntilSkipsCancelledEventAtTopOfHeap) {
  Engine eng;
  int fired = 0;
  const EventId early = eng.post(10, [&] { ++fired; });
  eng.post(100, [&] { ++fired; });
  ASSERT_TRUE(eng.cancel(early));
  // The earliest handle is stale; runUntil must skip it, see that the next
  // live event is beyond the horizon, and stop at the horizon time.
  EXPECT_FALSE(eng.runUntil(50));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(eng.now(), 50);
  EXPECT_TRUE(eng.runUntil(100));
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, RunUntilNeverMovesTimeBackwards) {
  Engine eng;
  eng.post(80, [] {});
  EXPECT_TRUE(eng.runUntil(100));
  EXPECT_EQ(eng.now(), 100);
  EXPECT_TRUE(eng.runUntil(50));  // horizon in the past: clock stays put
  EXPECT_EQ(eng.now(), 100);
  // And posting still measures against the unchanged now().
  EXPECT_THROW(eng.postAt(99, [] {}), SimError);
}

TEST(ProcessTest, AdvanceMovesVirtualTimeAndAccountsCpu) {
  Engine eng;
  SimTime sawTime = -1;
  Process p(eng, "worker", [&] {
    Process& self = *eng.currentProcess();
    self.advance(usec(5));
    self.advance(usec(3), CpuUse::Idle);
    sawTime = eng.now();
  });
  eng.run();
  EXPECT_EQ(sawTime, usec(8));
  EXPECT_EQ(p.cpuBusy(), usec(5));
  EXPECT_TRUE(p.finished());
}

TEST(ProcessTest, TwoProcessesInterleaveDeterministically) {
  Engine eng;
  std::vector<std::pair<char, SimTime>> trace;
  Process a(eng, "a", [&] {
    Process& self = *eng.currentProcess();
    for (int i = 0; i < 3; ++i) {
      self.advance(usec(10));
      trace.emplace_back('a', eng.now());
    }
  });
  Process b(eng, "b", [&] {
    Process& self = *eng.currentProcess();
    for (int i = 0; i < 3; ++i) {
      self.advance(usec(15));
      trace.emplace_back('b', eng.now());
    }
  });
  eng.run();
  // At the t=30 tie, b's resume event was posted (at t=15) before a's
  // (at t=20), so insertion order puts b first.
  const std::vector<std::pair<char, SimTime>> expected = {
      {'a', usec(10)}, {'b', usec(15)}, {'a', usec(20)},
      {'b', usec(30)}, {'a', usec(30)}, {'b', usec(45)},
  };
  EXPECT_EQ(trace, expected);
}

TEST(ProcessTest, SignalWakesWaiter) {
  Engine eng;
  Signal sig(eng);
  SimTime wokenAt = -1;
  Process waiter(eng, "waiter", [&] {
    eng.currentProcess()->await(sig);
    wokenAt = eng.now();
  });
  Process notifier(eng, "notifier", [&] {
    eng.currentProcess()->advance(usec(42));
    sig.notifyAll();
  });
  eng.run();
  EXPECT_EQ(wokenAt, usec(42));
  EXPECT_EQ(waiter.cpuBusy(), 0);  // await is idle
}

TEST(ProcessTest, AwaitBusyChargesCpu) {
  Engine eng;
  Signal sig(eng);
  Process waiter(eng, "waiter", [&] { eng.currentProcess()->awaitBusy(sig); });
  Process notifier(eng, "notifier", [&] {
    eng.currentProcess()->advance(usec(42));
    sig.notifyAll();
  });
  eng.run();
  EXPECT_EQ(waiter.cpuBusy(), usec(42));
}

TEST(ProcessTest, AwaitForTimesOut) {
  Engine eng;
  Signal sig(eng);
  bool fired = true;
  SimTime endTime = -1;
  Process waiter(eng, "waiter", [&] {
    fired = eng.currentProcess()->awaitFor(sig, usec(100));
    endTime = eng.now();
  });
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(endTime, usec(100));
}

TEST(ProcessTest, SignalBeatsTimeout) {
  Engine eng;
  Signal sig(eng);
  bool fired = false;
  Process waiter(eng, "waiter", [&] {
    fired = eng.currentProcess()->awaitFor(sig, usec(100));
  });
  Process notifier(eng, "notifier", [&] {
    eng.currentProcess()->advance(usec(10));
    sig.notifyAll();
  });
  eng.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(eng.now(), usec(10));
}

TEST(ProcessTest, TimedOutWaiterIsNotWokenBySubsequentNotify) {
  Engine eng;
  Signal sig(eng);
  int wakeups = 0;
  Process waiter(eng, "waiter", [&] {
    Process& self = *eng.currentProcess();
    EXPECT_FALSE(self.awaitFor(sig, usec(10)));
    ++wakeups;
    // Waits again; this time the notify at t=50 should land.
    EXPECT_TRUE(self.awaitFor(sig, usec(1000)));
    ++wakeups;
  });
  Process notifier(eng, "notifier", [&] {
    eng.currentProcess()->advance(usec(50));
    sig.notifyAll();
  });
  eng.run();
  EXPECT_EQ(wakeups, 2);
}

TEST(ProcessTest, NotifyOneWakesSingleWaiterInFifoOrder) {
  Engine eng;
  Signal sig(eng);
  std::vector<int> woken;
  auto makeWaiter = [&](int idx) {
    return [&, idx] {
      eng.currentProcess()->await(sig);
      woken.push_back(idx);
    };
  };
  Process w0(eng, "w0", makeWaiter(0));
  Process w1(eng, "w1", makeWaiter(1));
  Process n(eng, "n", [&] {
    Process& self = *eng.currentProcess();
    self.advance(usec(5));
    sig.notifyOne();
    self.advance(usec(5));
    sig.notifyOne();
  });
  eng.run();
  EXPECT_EQ(woken, (std::vector<int>{0, 1}));
}

TEST(ProcessTest, DeadlockIsDetected) {
  Engine eng;
  Signal sig(eng);
  auto waiter = std::make_unique<Process>(
      eng, "stuck", [&] { eng.currentProcess()->await(sig); });
  EXPECT_THROW(eng.run(), DeadlockError);
}

TEST(ProcessTest, BodyExceptionPropagatesOutOfRun) {
  Engine eng;
  Process p(eng, "thrower", [&] {
    eng.currentProcess()->advance(usec(1));
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(ProcessTest, UnstartedProcessIsKilledCleanlyOnDestruction) {
  Engine eng;
  {
    Process p(eng, "never-run", [&] { eng.currentProcess()->advance(1); });
    // Engine never runs; destructor must unwind the thread without hanging.
  }
  SUCCEED();
}

TEST(ResourceTest, PipelinesBackToBackWork) {
  Resource r("link");
  // Three items, each needing 10ns, all ready at t=0: FIFO queueing.
  EXPECT_EQ(r.acquire(0, 10), 10);
  EXPECT_EQ(r.acquire(0, 10), 20);
  EXPECT_EQ(r.acquire(0, 10), 30);
  // An item arriving after the queue drains starts immediately.
  EXPECT_EQ(r.acquire(100, 5), 105);
  EXPECT_EQ(r.busyTime(), 35);
  EXPECT_EQ(r.itemsServed(), 4u);
}

TEST(ResourceTest, IdleGapsDoNotAccrueBusyTime) {
  Resource r("dma");
  r.acquire(0, 10);
  r.acquire(50, 10);
  EXPECT_EQ(r.busyTime(), 20);
  EXPECT_EQ(r.freeAt(), 60);
}

TEST(StatsTest, AccumulatorBasics) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.stddev(), 2.138, 1e-3);
}

TEST(StatsTest, MergeMatchesSequential) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    all.add(x);
    (i < 50 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(StatsTest, QuantilesAreExact) {
  QuantileTracker q;
  for (int i = 100; i >= 1; --i) q.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.median(), 50.5, 1e-12);
  EXPECT_NEAR(q.quantile(0.99), 99.01, 1e-9);
}

TEST(PrngTest, DeterministicAcrossInstances) {
  Xoshiro256 a(1234, "link0");
  Xoshiro256 b(1234, "link0");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(PrngTest, DifferentTagsDiverge) {
  Xoshiro256 a(1234, "link0");
  Xoshiro256 b(1234, "link1");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(PrngTest, UniformInRangeAndBelowIsUnbiased) {
  Xoshiro256 g(42);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    const double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    acc.add(u);
  }
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(g.below(7), 7u);
}

// --- timer / window properties the sharded stack port relies on -----------

TEST(TimerApiTest, CancelAfterFireReturnsFalse) {
  Engine e;
  int fired = 0;
  const EventId id = e.post(10, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.cancel(id));  // already fired: a stale handle is a no-op
  EXPECT_FALSE(e.cancel(id));  // and stays one
}

TEST(TimerApiTest, CancelledIdIsNeverConfusedWithReusedSlot) {
  // The RTO path cancels and re-arms constantly; a recycled pool slot
  // must not let an old handle kill the new timer.
  Engine e;
  int fired = 0;
  const EventId a = e.post(10, [&] { fired += 1; });
  ASSERT_TRUE(e.cancel(a));
  const EventId b = e.post(10, [&] { fired += 100; });
  EXPECT_FALSE(e.cancel(a));  // stale generation: no effect on b
  e.run();
  EXPECT_EQ(fired, 100);
  (void)b;
}

TEST(TimerApiTest, StaleExpiryAfterCancelIsANoOp) {
  // Cancel between post and expiry: the heap entry left behind must be
  // skipped, not fired, and must not stall time for later events.
  Engine e;
  int fired = 0;
  const EventId a = e.post(10, [&] { ++fired; });
  e.post(20, [&] { fired += 10; });
  ASSERT_TRUE(e.cancel(a));
  e.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(e.now(), 20);
}

TEST(TimerApiTest, NextEventTimePrunesCancelledTop) {
  Engine e;
  const EventId a = e.post(5, [] {});
  e.post(9, [] {});
  EXPECT_EQ(e.nextEventTime(), 5);
  ASSERT_TRUE(e.cancel(a));
  EXPECT_EQ(e.nextEventTime(), 9);
  e.run();
  EXPECT_EQ(e.nextEventTime(), Engine::kNoEventTime);
}

TEST(WindowedModeTest, PostAndCancelOnParkedEngineThrow) {
  // The PDES contract: between windows a domain engine is parked, and
  // mutating it from outside (a cross-domain timer cancel, a direct
  // post) is exactly the data race the sharded port must never make.
  Engine e;
  const EventId id = e.post(50, [] {});
  e.setWindowedMode(true);
  EXPECT_THROW(e.post(10, [] {}), SimError);
  EXPECT_THROW(e.postAt(10, [] {}), SimError);
  EXPECT_THROW(e.cancel(id), SimError);
  e.setWindowedMode(false);
  EXPECT_TRUE(e.cancel(id));  // legal again outside windowed mode
}

TEST(WindowedModeTest, InWindowPostAndCancelAreLegal) {
  // Inside runWindow the domain owns itself: same-domain timer
  // programming (the NIC RTO pattern) must work unchanged.
  Engine e;
  int fired = 0;
  EventId rto = 0;
  e.post(10, [&] {
    rto = e.post(5, [&] { fired += 100; });  // arm
  });
  e.post(12, [&] {
    EXPECT_TRUE(e.cancel(rto));  // ack arrived: cancel in-window
    ++fired;
  });
  e.setWindowedMode(true);
  e.runWindow(100);
  e.setWindowedMode(false);
  EXPECT_EQ(fired, 1);
}

TEST(WindowedModeTest, RunWindowExecutesHalfOpenInterval) {
  Engine e;
  std::vector<int> order;
  e.post(10, [&] { order.push_back(10); });
  e.post(20, [&] { order.push_back(20); });
  e.post(30, [&] { order.push_back(30); });
  e.setWindowedMode(true);
  EXPECT_EQ(e.runWindow(20), 1u);  // [0, 20): only t=10
  EXPECT_EQ(e.now(), 10);          // the clock rests on the last event
  EXPECT_EQ(e.runWindow(31), 2u);  // [20, 31): t=20 and t=30
  e.setWindowedMode(false);
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(WindowedModeTest, MergePostBypassesGuardAndKeepsOrder) {
  // postAtMerge is the barrier-time merge hook: it must work on a parked
  // engine, and two merged arrivals at one timestamp must fire in merge
  // (domain) order.
  Engine e;
  std::vector<int> order;
  e.setWindowedMode(true);
  e.postAtMerge(10, [&] { order.push_back(1); });
  e.postAtMerge(10, [&] { order.push_back(2); });
  e.runWindow(11);
  e.setWindowedMode(false);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(HostedPdesTest, CrossDomainSendBelowWindowEndThrows) {
  // A hosted domain that tries to deliver inside the open window has
  // violated the lookahead contract; the engine must refuse rather than
  // silently produce a shard-count-dependent schedule.
  EngineConfig cfg;
  cfg.domains = 2;
  cfg.lookahead = 10;
  cfg.shards = 1;
  cfg.hostEngines = true;
  ShardedEngine pdes(cfg);
  pdes.domainEngine(0).postAt(0, [&] {
    EXPECT_THROW(pdes.sendAt(0, 1, 3, [] {}), SimError);
  });
  pdes.run();
}

TEST(HostedPdesTest, PerDomainOrderingIsMergeDeterministic) {
  // Two domains cross-feed each other at identical timestamps: arrivals
  // must interleave with local events in (time, merge-order) order, and
  // the whole schedule must not depend on the worker shard count.
  auto runOnce = [](std::uint32_t shards) {
    EngineConfig cfg;
    cfg.domains = 2;
    cfg.lookahead = 10;
    cfg.shards = shards;
    cfg.hostEngines = true;
    ShardedEngine pdes(cfg);
    std::vector<std::vector<int>> log(2);
    for (std::uint32_t d = 0; d < 2; ++d) {
      Engine& e = pdes.domainEngine(d);
      const std::uint32_t peer = 1 - d;
      e.postAt(0, [&pdes, &log, d, peer] {
        // Lands at t=20 in the peer, tying with its local event there.
        pdes.sendAt(d, peer, 20, [&log, peer, d] {
          log[peer].push_back(100 + static_cast<int>(d));
        });
      });
      e.postAt(20, [&log, d] { log[d].push_back(static_cast<int>(d)); });
    }
    pdes.run();
    return log;
  };
  const auto base = runOnce(1);
  ASSERT_EQ(base[0].size(), 2u);
  ASSERT_EQ(base[1].size(), 2u);
  EXPECT_EQ(runOnce(2), base);
  EXPECT_EQ(runOnce(5), base);
}

}  // namespace
}  // namespace vibe::sim
