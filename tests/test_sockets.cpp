// Tests for the stream-sockets layer: byte-stream semantics, framing
// invisibility, window flow control, simultaneous bidirectional traffic,
// half-close/EOF, and behaviour across NIC models.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/sockets/stream.hpp"
#include "vibe/cluster.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using upper::sockets::StreamConfig;
using upper::sockets::StreamListener;
using upper::sockets::StreamSocket;

std::vector<std::byte> pattern(std::size_t len, std::uint8_t seed) {
  std::vector<std::byte> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = std::byte(static_cast<std::uint8_t>(seed + i * 23));
  }
  return out;
}

void runPair(const std::string& profile,
             const std::function<void(StreamSocket&, NodeEnv&)>& clientFn,
             const std::function<void(StreamSocket&, NodeEnv&)>& serverFn,
             const StreamConfig& cfg = {}) {
  ClusterConfig cc;
  cc.profile = nic::profileByName(profile);
  Cluster cluster(cc);
  auto client = [&](NodeEnv& env) {
    auto sock = StreamSocket::connect(env, 1, 8080, cfg);
    clientFn(*sock, env);
  };
  auto server = [&](NodeEnv& env) {
    StreamListener listener(env, 8080, cfg);
    auto sock = listener.accept();
    serverFn(*sock, env);
  };
  cluster.run({client, server});
}

class SocketsAllProfiles : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Profiles, SocketsAllProfiles,
                         ::testing::Values("mvia", "bvia", "clan"),
                         [](const auto& pi) { return pi.param; });

TEST_P(SocketsAllProfiles, ByteStreamRoundTrip) {
  const auto payload = pattern(100000, 3);  // spans many frames
  runPair(
      GetParam(),
      [&](StreamSocket& s, NodeEnv&) {
        s.sendAll(payload);
        std::vector<std::byte> echo(payload.size());
        s.recvAll(echo);
        EXPECT_EQ(echo, payload);
        s.close();
      },
      [&](StreamSocket& s, NodeEnv&) {
        std::vector<std::byte> buf(payload.size());
        s.recvAll(buf);
        EXPECT_EQ(buf, payload);
        s.sendAll(buf);
        // Drain until EOF.
        std::array<std::byte, 64> sink;
        while (s.recvSome(sink) != 0) {
        }
      });
}

TEST(SocketsTest, MessageBoundariesAreInvisible) {
  // Many small writes arrive as one contiguous stream the reader can
  // consume in arbitrary chunk sizes.
  runPair(
      "clan",
      [&](StreamSocket& s, NodeEnv&) {
        for (int i = 0; i < 50; ++i) {
          s.sendAll(pattern(7, static_cast<std::uint8_t>(i)));
        }
        s.close();
      },
      [&](StreamSocket& s, NodeEnv&) {
        std::vector<std::byte> all;
        std::array<std::byte, 13> chunk;  // deliberately odd chunk size
        for (;;) {
          const std::size_t got = s.recvSome(chunk);
          if (got == 0) break;
          all.insert(all.end(), chunk.begin(),
                     chunk.begin() + static_cast<std::ptrdiff_t>(got));
        }
        ASSERT_EQ(all.size(), 350u);
        for (int i = 0; i < 50; ++i) {
          const auto expect = pattern(7, static_cast<std::uint8_t>(i));
          for (int b = 0; b < 7; ++b) {
            EXPECT_EQ(all[i * 7 + b], expect[b]) << i << ":" << b;
          }
        }
      });
}

TEST(SocketsTest, WindowThrottlesFastSenderSlowReader) {
  StreamConfig cfg;
  cfg.ringDepth = 4;
  cfg.frameBytes = 1024;
  const auto payload = pattern(64 * 1024, 9);
  runPair(
      "clan",
      [&](StreamSocket& s, NodeEnv&) {
        s.sendAll(payload);  // 64 frames through a 4-frame window
        s.close();
      },
      [&](StreamSocket& s, NodeEnv& env) {
        std::vector<std::byte> all(payload.size());
        std::size_t off = 0;
        while (off < all.size()) {
          env.self.advance(sim::usec(100), sim::CpuUse::Idle);  // slow app
          const std::size_t got =
              s.recvSome(std::span<std::byte>(all).subspan(off));
          if (got == 0) break;
          off += got;
        }
        EXPECT_EQ(off, payload.size());
        EXPECT_EQ(all, payload);
      },
      cfg);
}

TEST(SocketsTest, SimultaneousBidirectionalWritesDoNotDeadlock) {
  StreamConfig cfg;
  cfg.ringDepth = 4;
  cfg.frameBytes = 2048;
  const std::size_t kBytes = 128 * 1024;  // >> window on both sides
  auto both = [&](StreamSocket& s, NodeEnv&, std::uint8_t mySeed,
                  std::uint8_t theirSeed) {
    s.sendAll(pattern(kBytes, mySeed));
    std::vector<std::byte> in(kBytes);
    s.recvAll(in);
    EXPECT_EQ(in, pattern(kBytes, theirSeed));
  };
  runPair(
      "clan",
      [&](StreamSocket& s, NodeEnv& env) { both(s, env, 1, 2); },
      [&](StreamSocket& s, NodeEnv& env) { both(s, env, 2, 1); }, cfg);
}

TEST(SocketsTest, EofSemantics) {
  runPair(
      "mvia",
      [&](StreamSocket& s, NodeEnv&) {
        s.sendAll(pattern(10, 5));
        s.close();
        EXPECT_THROW(s.sendAll(pattern(1, 0)), std::logic_error);
      },
      [&](StreamSocket& s, NodeEnv&) {
        std::array<std::byte, 10> buf;
        s.recvAll(buf);
        std::array<std::byte, 4> more;
        EXPECT_EQ(s.recvSome(more), 0u);  // EOF
        EXPECT_TRUE(s.peerClosed());
        std::array<std::byte, 16> big;
        EXPECT_THROW(s.recvAll(big), std::runtime_error);
      });
}

TEST(SocketsTest, CountersTrackPayloadBytes) {
  runPair(
      "clan",
      [&](StreamSocket& s, NodeEnv&) {
        s.sendAll(pattern(5000, 1));
        s.close();
        EXPECT_EQ(s.bytesSent(), 5000u);
      },
      [&](StreamSocket& s, NodeEnv&) {
        std::vector<std::byte> buf(5000);
        s.recvAll(buf);
        EXPECT_EQ(s.bytesReceived(), 5000u);
        std::array<std::byte, 1> sink;
        (void)s.recvSome(sink);
      });
}

TEST(SocketsTest, ListenerAcceptsSequentialConnections) {
  ClusterConfig cc;
  cc.profile = nic::profileByName("clan");
  Cluster cluster(cc);
  constexpr int kRounds = 4;
  auto client = [&](NodeEnv& env) {
    for (int i = 0; i < kRounds; ++i) {
      auto sock = StreamSocket::connect(env, 1, 8080);
      sock->sendAll(pattern(100 + i, static_cast<std::uint8_t>(i)));
      sock->close();
      std::array<std::byte, 1> sink;
      while (sock->recvSome(sink) != 0) {
      }
    }
  };
  auto server = [&](NodeEnv& env) {
    StreamListener listener(env, 8080);
    for (int i = 0; i < kRounds; ++i) {
      auto sock = listener.accept();
      std::vector<std::byte> buf(100 + i);
      sock->recvAll(buf);
      EXPECT_EQ(buf, pattern(100 + i, static_cast<std::uint8_t>(i)));
      sock->close();
      std::array<std::byte, 1> sink;
      while (sock->recvSome(sink) != 0) {
      }
    }
  };
  cluster.run({client, server});
}

TEST(SocketsTest, ExpiredAcceptLeavesListenerReusable) {
  ClusterConfig cc;
  cc.profile = nic::clanProfile();
  Cluster cluster(cc);
  const auto payload = pattern(64, 0x51);
  bool expired = false;
  std::size_t served = 0;
  auto server = [&](NodeEnv& env) {
    StreamListener listener(env, 8080);
    // Nobody dials for 20 ms, so a 5 ms accept must expire by throwing —
    // and must tear down its half-built endpoint, leaving the listener
    // fully reusable for the next accept on the same port.
    EXPECT_THROW(listener.accept(sim::msec(5)), std::runtime_error);
    expired = true;
    auto sock = listener.accept(sim::kSecond);
    std::vector<std::byte> got(payload.size());
    sock->recvAll(got);
    EXPECT_EQ(got, payload);
    served = got.size();
  };
  auto client = [&](NodeEnv& env) {
    env.self.advance(sim::msec(20), sim::CpuUse::Idle);
    auto sock = StreamSocket::connect(env, 0, 8080);
    sock->sendAll(payload);
    sock->close();
  };
  cluster.run({server, client});
  EXPECT_TRUE(expired);
  EXPECT_EQ(served, payload.size());
}

TEST(SocketsTest, SurvivesLossyFabric) {
  ClusterConfig cc;
  cc.profile = nic::clanProfile();
  cc.lossRate = 0.05;
  cc.seed = 21;
  Cluster cluster(cc);
  const auto payload = pattern(40000, 0x3D);
  auto client = [&](NodeEnv& env) {
    auto sock = StreamSocket::connect(env, 1, 8080);
    sock->sendAll(payload);
    sock->close();
  };
  auto server = [&](NodeEnv& env) {
    StreamListener listener(env, 8080);
    auto sock = listener.accept(sim::kSecond * 30);
    std::vector<std::byte> buf(payload.size());
    sock->recvAll(buf);
    EXPECT_EQ(buf, payload);
  };
  cluster.run({client, server});
}

}  // namespace
}  // namespace vibe
