// Determinism proof wall for the conservative PDES engine
// (src/simcore/pdes.hpp). The contract under test: every observable a
// model can extract from a ShardedEngine — execution order, digests,
// counters, window count, virtual end time — is a pure function of the
// model, byte-identical for every shard count and thread schedule.
//
// The wall has four faces:
//   - shards=1 bit-identity with the serial Engine on randomized
//     workloads (the two engines replay the same cascade event-for-event),
//   - deterministic cross-shard merge under adversarial same-timestamp
//     storms (every domain receives same-time events from every other),
//   - mailbox exactly-once delivery with exact cross-shard accounting,
//   - lookahead-window safety: conservative violations throw instead of
//     silently reordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <string>
#include <vector>

#include "fabric/pdes_traffic.hpp"
#include "simcore/engine.hpp"
#include "simcore/pdes.hpp"
#include "simcore/prng.hpp"
#include "simcore/trace.hpp"
#include "test_env.hpp"
#include "test_seed.hpp"

namespace vibe {
namespace {

using sim::Duration;
using sim::EngineConfig;
using sim::ShardedEngine;
using sim::SimError;
using sim::SimTime;
using sim::Tracer;

std::uint64_t mix64(std::uint64_t x) { return sim::splitmix64(x); }

using testing::ScopedEnv;

TEST(ShardCount, EnvOverridesHardware) {
  {
    ScopedEnv env("VIBE_SIM_SHARDS", "7");
    EXPECT_EQ(sim::shardCount(), 7u);
  }
  {
    ScopedEnv env("VIBE_SIM_SHARDS", nullptr);
    EXPECT_GE(sim::shardCount(), 1u);
  }
  {
    // Invalid and non-positive values fall back to hardware.
    ScopedEnv env("VIBE_SIM_SHARDS", "0");
    EXPECT_GE(sim::shardCount(), 1u);
  }
  {
    ScopedEnv env("VIBE_SIM_SHARDS", "banana");
    EXPECT_GE(sim::shardCount(), 1u);
  }
}

TEST(ShardedEngineConfig, Validation) {
  EXPECT_THROW(ShardedEngine({.domains = 0}), SimError);
  EXPECT_THROW(ShardedEngine({.domains = 2, .lookahead = -1}), SimError);
  // More than one shard without lookahead: no safe window exists.
  EXPECT_THROW(ShardedEngine({.domains = 4, .lookahead = 0, .shards = 2}),
               SimError);
  // Shards are clamped to the domain count.
  ShardedEngine clamped({.domains = 3, .lookahead = 10, .shards = 64});
  EXPECT_EQ(clamped.shards(), 3u);
  // One shard with zero lookahead is the serial degenerate case.
  ShardedEngine serial({.domains = 5, .lookahead = 0, .shards = 1});
  EXPECT_EQ(serial.shards(), 1u);
  EXPECT_EQ(serial.domainCount(), 5u);
}

// --- Face 1: shards=1 bit-identity with the serial Engine -----------------

/// A randomized event cascade replayed on both engines: every event
/// mixes (now, id) into a digest and schedules 0-2 children at random
/// future delays. Child ids are assigned in execution order, so the two
/// digests match iff the engines execute the identical sequence.
struct CascadeState {
  std::uint64_t seed = 0;
  std::uint64_t digest = Tracer::kDigestSeed;
  std::uint64_t nextId = 1;
  std::uint64_t executed = 0;
};

template <typename PostFn>
void cascadeEvent(CascadeState* st, std::uint64_t id, SimTime now,
                  const PostFn& post) {
  ++st->executed;
  st->digest = Tracer::combineDigest(
      st->digest, mix64(st->seed ^ static_cast<std::uint64_t>(now) ^ id));
  const std::uint64_t r = mix64(st->seed ^ (id * 0x9e3779b97f4a7c15ull));
  const unsigned children = id < 2000 ? static_cast<unsigned>(r % 3) : 0;
  for (unsigned c = 0; c < children; ++c) {
    const Duration delay =
        static_cast<Duration>(mix64(r ^ c) % 997);  // [0, 997) incl. 0
    post(st->nextId++, delay);
  }
}

TEST(ShardedEngineSerial, BitIdenticalWithSerialEngine) {
  const std::uint64_t base = testing::testRunSeed();
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    CascadeState serial{base + 11 * trial + 1};
    sim::Engine eng;
    struct SerialPost {
      sim::Engine* eng;
      CascadeState* st;
      const SerialPost* self;
      void operator()(std::uint64_t id, Duration delay) const {
        eng->post(delay, [st = st, id, self = self] {
          cascadeEvent(st, id, self->eng->now(), *self);
        });
      }
    };
    SerialPost sp{&eng, &serial, nullptr};
    sp.self = &sp;
    sp(0, 0);
    eng.run();

    CascadeState sharded{base + 11 * trial + 1};
    ShardedEngine seng({.domains = 1, .lookahead = 0, .shards = 1});
    struct ShardedPost {
      ShardedEngine* eng;
      CascadeState* st;
      const ShardedPost* self;
      void operator()(std::uint64_t id, Duration delay) const {
        eng->post(0, delay, [st = st, id, self = self] {
          cascadeEvent(st, id, self->eng->now(0), *self);
        });
      }
    };
    ShardedPost hp{&seng, &sharded, nullptr};
    hp.self = &hp;
    hp(0, 0);
    seng.run();

    EXPECT_EQ(serial.executed, sharded.executed) << "trial " << trial;
    EXPECT_EQ(serial.digest, sharded.digest) << "trial " << trial;
    EXPECT_EQ(seng.executedEvents(), sharded.executed);
    EXPECT_EQ(seng.pendingEvents(), 0u);
    EXPECT_EQ(seng.crossDomainEvents(), 0u);
    EXPECT_EQ(seng.crossShardEvents(), 0u);
  }
}

// --- Face 2: deterministic merge under same-timestamp storms --------------

/// Every domain sends every other domain (and itself) events that all
/// land at exactly the same timestamp, for several waves. The merge at
/// the window barrier must order them by (time, srcDomain, srcSeq) no
/// matter which shard parked them in which outbox.
struct StormLog {
  // Per destination domain: the (wave, srcDomain) tags in execution order.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> seen;
};

StormLog runStorm(std::uint32_t domains, unsigned shards,
                  std::uint32_t waves) {
  const Duration la = 100;
  ShardedEngine eng({.domains = domains, .lookahead = la, .shards = shards});
  StormLog log;
  log.seen.resize(domains);
  struct Ctx {
    ShardedEngine* eng;
    StormLog* log;
    std::uint32_t domains;
    std::uint32_t waves;
  };
  Ctx ctx{&eng, &log, domains, waves};
  // Wave w in domain d fires at t = (w+1)*la; at wave w every domain
  // sends every domain an event for the *same* arrival time (w+2)*la.
  struct Fire {
    static void wave(Ctx* c, std::uint32_t dst, std::uint32_t src,
                     std::uint32_t w) {
      c->log->seen[dst].push_back({w, src});
      if (w + 1 >= c->waves || src != dst) return;
      // One fan-out per (domain, wave), issued by the self-event so the
      // send happens inside dst's execution context.
      for (std::uint32_t to = 0; to < c->domains; ++to) {
        const std::uint32_t from = dst;
        const std::uint32_t next = w + 1;
        c->eng->send(dst, to, 100, [c, to, from, next] {
          Fire::wave(c, to, from, next);
        });
      }
    }
  };
  for (std::uint32_t d = 0; d < domains; ++d) {
    eng.post(d, 100, [&ctx, d] { Fire::wave(&ctx, d, d, 0); });
  }
  eng.run();
  EXPECT_EQ(eng.pendingEvents(), 0u);
  return log;
}

TEST(ShardedEngineStorm, SameTimestampMergeIsDeterministic) {
  const std::uint32_t kDomains = 6;
  const std::uint32_t kWaves = 5;
  const StormLog baseline = runStorm(kDomains, 1, kWaves);
  // Waves arrive in wave order; within one wave (one shared timestamp)
  // sources must appear in ascending srcDomain order — the documented
  // (time, srcDomain, srcSeq) key, not arrival or shard order.
  for (std::uint32_t d = 0; d < kDomains; ++d) {
    ASSERT_EQ(baseline.seen[d].size(), 1 + (kWaves - 1) * kDomains);
    EXPECT_EQ(baseline.seen[d][0], (std::pair<std::uint32_t, std::uint32_t>{
                                       0u, d}));
    for (std::uint32_t w = 1; w < kWaves; ++w) {
      for (std::uint32_t s = 0; s < kDomains; ++s) {
        EXPECT_EQ(baseline.seen[d][1 + (w - 1) * kDomains + s],
                  (std::pair<std::uint32_t, std::uint32_t>{w, s}))
            << "dst=" << d << " wave=" << w;
      }
    }
  }
  for (unsigned shards : {2u, 3u, 6u}) {
    const StormLog got = runStorm(kDomains, shards, kWaves);
    for (std::uint32_t d = 0; d < kDomains; ++d) {
      EXPECT_EQ(got.seen[d], baseline.seen[d])
          << "shards=" << shards << " dst=" << d;
    }
  }
}

// --- Face 3: mailbox exactly-once delivery --------------------------------

TEST(ShardedEngineMailbox, ExactlyOnceWithExactAccounting) {
  const std::uint32_t kDomains = 8;
  const std::uint32_t kRounds = 16;
  const Duration la = 50;
  for (unsigned shards : {1u, 2u, 3u, 8u}) {
    ShardedEngine eng(
        {.domains = kDomains, .lookahead = la, .shards = shards});
    // deliveries[src * kDomains + dst] counts (src -> dst) arrivals.
    std::vector<std::uint32_t> deliveries(kDomains * kDomains, 0);
    struct Ctx {
      ShardedEngine* eng;
      std::vector<std::uint32_t>* deliveries;
      std::uint32_t domains;
      std::uint32_t rounds;
    };
    Ctx ctx{&eng, &deliveries, kDomains, kRounds};
    struct Hop {
      static void run(Ctx* c, std::uint32_t at, std::uint32_t round) {
        if (round > 0) {
          const std::uint32_t src = (at + c->domains - 1) % c->domains;
          ++(*c->deliveries)[src * c->domains + at];
        }
        if (round >= c->rounds) return;
        const std::uint32_t next = (at + 1) % c->domains;
        c->eng->send(at, next, 50,
                     [c, next, round] { Hop::run(c, next, round + 1); });
      }
    };
    for (std::uint32_t d = 0; d < kDomains; ++d) {
      eng.post(d, 0, [&ctx, d] { Hop::run(&ctx, d, 0); });
    }
    eng.run();

    // Each of the kDomains tokens hops kRounds times around the ring:
    // every (src, src+1) edge is crossed exactly kRounds times total,
    // spread one per token, and nothing is lost or duplicated.
    for (std::uint32_t src = 0; src < kDomains; ++src) {
      const std::uint32_t dst = (src + 1) % kDomains;
      EXPECT_EQ(deliveries[src * kDomains + dst], kRounds)
          << "shards=" << shards << " edge " << src << "->" << dst;
    }
    EXPECT_EQ(eng.executedEvents(), kDomains * (kRounds + 1));
    EXPECT_EQ(eng.pendingEvents(), 0u);
    EXPECT_EQ(eng.crossDomainEvents(), kDomains * kRounds);
    // Ring edges that cross shard boundaries under round-robin packing
    // (domain d -> shard d % shards): exactly the edges whose endpoints
    // differ mod `shards`.
    std::uint64_t expectCross = 0;
    for (std::uint32_t src = 0; src < kDomains; ++src) {
      const std::uint32_t dst = (src + 1) % kDomains;
      if (src % shards != dst % shards) expectCross += kRounds;
    }
    EXPECT_EQ(eng.crossShardEvents(), expectCross) << "shards=" << shards;
  }
}

// --- Face 4: lookahead-window safety --------------------------------------

TEST(ShardedEngineSafety, CrossDomainBelowLookaheadThrows) {
  ShardedEngine eng({.domains = 2, .lookahead = 100, .shards = 1});
  bool threw = false;
  eng.post(0, 0, [&] {
    try {
      eng.send(0, 1, 99, [] {});
    } catch (const SimError&) {
      threw = true;
    }
  });
  eng.run();
  EXPECT_TRUE(threw);
  // At or above the lookahead is fine.
  bool delivered = false;
  eng.post(0, 0, [&] { eng.send(0, 1, 100, [&] { delivered = true; }); });
  eng.run();
  EXPECT_TRUE(delivered);
}

TEST(ShardedEngineSafety, ForeignDomainPostThrowsDuringRun) {
  ShardedEngine eng({.domains = 3, .lookahead = 10, .shards = 1});
  std::string what;
  eng.post(1, 0, [&] {
    try {
      eng.post(2, 0, [] {});  // domain 2's state from domain 1's context
    } catch (const SimError& e) {
      what = e.what();
    }
  });
  eng.run();
  EXPECT_NE(what.find("outside that domain's execution context"),
            std::string::npos)
      << what;
  // send() from the wrong source context is rejected the same way.
  what.clear();
  eng.post(1, 0, [&] {
    try {
      eng.send(2, 0, 10, [] {});
    } catch (const SimError& e) {
      what = e.what();
    }
  });
  eng.run();
  EXPECT_NE(what.find("outside that domain's execution context"),
            std::string::npos)
      << what;
}

TEST(ShardedEngineSafety, PostValidation) {
  ShardedEngine eng({.domains = 2, .lookahead = 10, .shards = 1});
  EXPECT_THROW(eng.post(0, -1, [] {}), SimError);
  EXPECT_THROW(eng.post(2, 0, [] {}), SimError);
  EXPECT_THROW(eng.post(0, 0, sim::EventFn{}), SimError);
  EXPECT_THROW(eng.send(0, 2, 10, [] {}), SimError);
  EXPECT_THROW(eng.now(2), SimError);
}

TEST(ShardedEngineSafety, EventExceptionPropagatesAndAborts) {
  for (unsigned shards : {1u, 4u}) {
    ShardedEngine eng({.domains = 4, .lookahead = 10, .shards = shards});
    eng.post(2, 5, [] { throw SimError("boom in domain 2"); });
    for (std::uint32_t d = 0; d < 4; ++d) {
      eng.post(d, 1000, [] {});  // far future: may be skipped after abort
    }
    try {
      eng.run();
      FAIL() << "expected SimError (shards=" << shards << ")";
    } catch (const SimError& e) {
      EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    }
    // The engine is not wedged: a fresh run() drains what remains.
    eng.run();
    EXPECT_EQ(eng.pendingEvents(), 0u);
  }
}

// --- runUntil windows -----------------------------------------------------

TEST(ShardedEngineRunUntil, HorizonPartitionsTheRun) {
  // Events record into per-domain vectors: with shards > 1, same-window
  // events in different domains execute concurrently, so a shared sink
  // would be a data race in the test itself.
  using FiredBy = std::array<std::vector<SimTime>, 3>;
  auto gather = [](const FiredBy& firedBy) {
    std::vector<SimTime> all;
    for (const auto& v : firedBy) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    return all;
  };
  for (unsigned shards : {1u, 3u}) {
    auto build = [](ShardedEngine& eng, FiredBy& firedBy) {
      struct Ctx {
        ShardedEngine* eng;
        FiredBy* firedBy;
      };
      auto* ctx = new Ctx{&eng, &firedBy};
      for (std::uint32_t d = 0; d < 3; ++d) {
        for (Duration t : {100, 250, 400, 900}) {
          eng.post(d, t, [ctx, d] {
            (*ctx->firedBy)[d].push_back(ctx->eng->now(d));
          });
        }
      }
      return ctx;
    };
    ShardedEngine eng({.domains = 3, .lookahead = 20, .shards = shards});
    FiredBy firedBy;
    auto* ctx = build(eng, firedBy);
    EXPECT_FALSE(eng.runUntil(250));
    std::vector<SimTime> fired = gather(firedBy);
    EXPECT_EQ(fired.size(), 6u);  // t=100 and t=250 in all three domains
    for (SimTime t : fired) EXPECT_LE(t, 250);
    for (std::uint32_t d = 0; d < 3; ++d) EXPECT_GE(eng.now(d), 250);
    EXPECT_TRUE(eng.runUntil(10'000));
    fired = gather(firedBy);
    EXPECT_EQ(fired.size(), 12u);
    EXPECT_EQ(eng.pendingEvents(), 0u);
    delete ctx;

    // An uninterrupted run executes the identical multiset of times.
    ShardedEngine whole({.domains = 3, .lookahead = 20, .shards = shards});
    FiredBy wholeFiredBy;
    auto* wctx = build(whole, wholeFiredBy);
    whole.run();
    EXPECT_EQ(fired, gather(wholeFiredBy));
    delete wctx;
  }
}

// --- The full-stack invariance proof on the fat-tree workload -------------

TEST(PdesTraffic, DigestInvariantAcrossShardCounts) {
  fabric::PdesTrafficConfig cfg;
  cfg.fatTreeK = 4;   // 16 hosts, 8 edge domains
  cfg.rounds = 6;
  cfg.seed = testing::testRunSeed() + 401;
  cfg.computeIters = 8;
  cfg.shards = 1;
  const fabric::PdesTrafficResult base = fabric::runPdesTraffic(cfg);
  EXPECT_EQ(base.domains, 8u);
  EXPECT_EQ(base.shardsUsed, 1u);
  EXPECT_GT(base.lookahead, 0);
  EXPECT_GT(base.events, 0u);
  EXPECT_EQ(base.crossShard, 0u);  // one shard: nothing crosses
  EXPECT_GT(base.crossDomain, 0u);
  for (unsigned shards : {2u, 3u, 5u, 8u}) {
    fabric::PdesTrafficConfig c = cfg;
    c.shards = shards;
    const fabric::PdesTrafficResult got = fabric::runPdesTraffic(c);
    EXPECT_EQ(got.digest, base.digest) << "shards=" << shards;
    EXPECT_EQ(got.events, base.events) << "shards=" << shards;
    EXPECT_EQ(got.messages, base.messages) << "shards=" << shards;
    EXPECT_EQ(got.crossDomain, base.crossDomain) << "shards=" << shards;
    EXPECT_EQ(got.windows, base.windows) << "shards=" << shards;
    EXPECT_EQ(got.endTime, base.endTime) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(got.meanRttUsec, base.meanRttUsec)
        << "shards=" << shards;
    EXPECT_EQ(got.shardsUsed, std::min(shards, 8u));
  }
}

TEST(PdesTraffic, RaggedHostCountAndEnvDefaultShards) {
  // A partial fat-tree (hosts not a multiple of the pod size) must
  // partition and stay invariant too; shards=0 picks up VIBE_SIM_SHARDS.
  fabric::PdesTrafficConfig cfg;
  cfg.fatTreeK = 4;
  cfg.hosts = 11;
  cfg.rounds = 4;
  cfg.seed = testing::testRunSeed() + 402;
  cfg.computeIters = 4;
  cfg.shards = 1;
  const fabric::PdesTrafficResult base = fabric::runPdesTraffic(cfg);
  EXPECT_EQ(base.domains, 6u);  // ceil(11 / 2) edge switches
  {
    ScopedEnv env("VIBE_SIM_SHARDS", "3");
    fabric::PdesTrafficConfig c = cfg;
    c.shards = 0;
    const fabric::PdesTrafficResult got = fabric::runPdesTraffic(c);
    EXPECT_EQ(got.shardsUsed, 3u);
    EXPECT_EQ(got.digest, base.digest);
    EXPECT_EQ(got.endTime, base.endTime);
  }
  EXPECT_THROW(fabric::runPdesTraffic({.fatTreeK = 3}), SimError);
  EXPECT_THROW(fabric::runPdesTraffic({.fatTreeK = 4, .hosts = 17}),
               SimError);
}

// --- Runtime profiler ------------------------------------------------------

TEST(PdesProfiler, ProfilingDoesNotPerturbTheSimulation) {
  // The profiler reads wall clocks and writes per-shard tallies; it must
  // never feed back into virtual time. Same digest with it on and off.
  fabric::PdesTrafficConfig cfg;
  cfg.fatTreeK = 4;
  cfg.rounds = 5;
  cfg.seed = testing::testRunSeed() + 403;
  cfg.computeIters = 6;
  for (unsigned shards : {1u, 3u}) {
    fabric::PdesTrafficConfig plain = cfg;
    plain.shards = shards;
    const fabric::PdesTrafficResult off = fabric::runPdesTraffic(plain);
    EXPECT_TRUE(off.shardProfiles.empty());

    fabric::PdesTrafficConfig prof = cfg;
    prof.shards = shards;
    prof.profileShards = true;
    const fabric::PdesTrafficResult on = fabric::runPdesTraffic(prof);
    EXPECT_EQ(on.digest, off.digest) << "shards=" << shards;
    EXPECT_EQ(on.events, off.events) << "shards=" << shards;
    EXPECT_EQ(on.windows, off.windows) << "shards=" << shards;
    EXPECT_EQ(on.endTime, off.endTime) << "shards=" << shards;
    ASSERT_EQ(on.shardProfiles.size(), on.shardsUsed);
  }
}

TEST(PdesProfiler, ShardProfilesReconcileWithEngineTotals) {
  fabric::PdesTrafficConfig cfg;
  cfg.fatTreeK = 4;
  cfg.rounds = 6;
  cfg.seed = testing::testRunSeed() + 404;
  cfg.computeIters = 8;
  cfg.shards = 3;
  cfg.profileShards = true;
  const fabric::PdesTrafficResult res = fabric::runPdesTraffic(cfg);
  ASSERT_EQ(res.shardProfiles.size(), 3u);

  std::uint64_t events = 0;
  std::uint64_t crossSent = 0;
  std::uint32_t domains = 0;
  for (const sim::ShardProfile& p : res.shardProfiles) {
    events += p.events;
    crossSent += p.crossShardSent;
    domains += p.domains;
    // A shard is active in at most every window the engine executed.
    EXPECT_LE(p.windowsActive, res.windows) << "shard " << p.shard;
  }
  EXPECT_EQ(events, res.events);
  EXPECT_EQ(crossSent, res.crossShard);
  EXPECT_EQ(domains, res.domains);
  EXPECT_GE(res.loadImbalance, 1.0);
  // 8 edge domains over 3 shards: imbalance is real but bounded — the
  // max-loaded shard cannot exceed the total.
  EXPECT_LE(res.loadImbalance, 3.0);
}

TEST(PdesProfiler, SerialPathTimesWindowsToo) {
  fabric::PdesTrafficConfig cfg;
  cfg.fatTreeK = 4;
  cfg.rounds = 3;
  cfg.seed = testing::testRunSeed() + 405;
  cfg.shards = 1;
  cfg.profileShards = true;
  const fabric::PdesTrafficResult res = fabric::runPdesTraffic(cfg);
  ASSERT_EQ(res.shardProfiles.size(), 1u);
  const sim::ShardProfile& p = res.shardProfiles.front();
  EXPECT_EQ(p.events, res.events);
  EXPECT_EQ(p.domains, res.domains);
  EXPECT_GT(p.windowsActive, 0u);
  EXPECT_LE(p.windowsActive, res.windows);
  EXPECT_EQ(p.barrierWaitNs, 0u) << "no barrier on the serial path";
  EXPECT_DOUBLE_EQ(res.loadImbalance, 1.0);
}

}  // namespace
}  // namespace vibe
