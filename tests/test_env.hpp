// Scoped environment-variable override for tests that pivot on env
// configuration (VIBE_SIM_SHARDS, VIBE_JOBS, ...). Saves the previous
// value on construction and restores it — including "was unset" — on
// destruction, so tests compose and leave the process environment alone.
//
// Not thread-safe (setenv never is): construct only on the main test
// thread, outside any runSweep callback.
#pragma once

#include <cstdlib>
#include <string>

namespace vibe::testing {

class ScopedEnv {
 public:
  /// Overrides `name` with `value`; nullptr unsets it.
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

}  // namespace vibe::testing
