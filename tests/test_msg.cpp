// Tests for the MPI-like message layer: eager/rendezvous integrity, tag
// matching, credit flow control, collectives — across NIC models and rank
// counts.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/msg/communicator.hpp"
#include "vibe/cluster.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using upper::msg::CommConfig;
using upper::msg::Communicator;

std::vector<std::byte> pattern(std::size_t len, std::uint8_t seed) {
  std::vector<std::byte> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = std::byte(static_cast<std::uint8_t>(seed + i * 11));
  }
  return out;
}

ClusterConfig configFor(const std::string& profile, std::uint32_t nodes) {
  ClusterConfig c;
  c.profile = nic::profileByName(profile);
  c.nodes = nodes;
  return c;
}

/// Runs `body(comm, env)` as an SPMD program on `nodes` ranks.
void runSpmd(const std::string& profile, std::uint32_t nodes,
             const CommConfig& commCfg,
             const std::function<void(Communicator&, NodeEnv&)>& body) {
  Cluster cluster(configFor(profile, nodes));
  std::vector<std::function<void(NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < nodes; ++r) {
    programs.push_back([&, r](NodeEnv& env) {
      auto comm = Communicator::create(env, r, nodes, commCfg);
      body(*comm, env);
    });
  }
  cluster.run(std::move(programs));
}

class MsgAllProfiles : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Profiles, MsgAllProfiles,
                         ::testing::Values("mvia", "bvia", "clan"),
                         [](const auto& pi) { return pi.param; });

TEST_P(MsgAllProfiles, EagerAndRendezvousRoundTrip) {
  const std::size_t sizes[] = {0, 1, 100, 8192, 8193, 100000};
  runSpmd(GetParam(), 2, {}, [&](Communicator& comm, NodeEnv&) {
    for (std::size_t len : sizes) {
      if (comm.rank() == 0) {
        comm.send(1, 7, pattern(len, 3));
        const auto back = comm.recv(1, 9);
        EXPECT_EQ(back, pattern(len, 5)) << "len=" << len;
      } else {
        const auto got = comm.recv(0, 7);
        EXPECT_EQ(got, pattern(len, 3)) << "len=" << len;
        comm.send(0, 9, pattern(len, 5));
      }
    }
    EXPECT_GT(comm.eagerSent(), 0u);
    EXPECT_GT(comm.rendezvousSent(), 0u);
  });
}

TEST(MsgTest, TagsMatchOutOfOrder) {
  runSpmd("clan", 2, {}, [&](Communicator& comm, NodeEnv&) {
    if (comm.rank() == 0) {
      comm.send(1, 1, pattern(64, 1));
      comm.send(1, 2, pattern(64, 2));
      comm.send(1, 3, pattern(64, 3));
    } else {
      // Receive in reverse tag order: earlier messages are queued as
      // unexpected and matched later.
      EXPECT_EQ(comm.recv(0, 3), pattern(64, 3));
      EXPECT_EQ(comm.recv(0, 2), pattern(64, 2));
      EXPECT_EQ(comm.recv(0, 1), pattern(64, 1));
    }
  });
}

TEST(MsgTest, CreditFlowControlThrottlesFloods) {
  CommConfig cfg;
  cfg.creditsPerPeer = 4;
  runSpmd("clan", 2, cfg, [&](Communicator& comm, NodeEnv& env) {
    constexpr int kFlood = 40;
    if (comm.rank() == 0) {
      for (int i = 0; i < kFlood; ++i) {
        comm.send(1, 5, pattern(128, static_cast<std::uint8_t>(i)));
      }
      // With only 4 credits, a 40-message flood must have stalled and the
      // receiver must have returned credits.
      EXPECT_GT(comm.creditStalls(), 0u);
    } else {
      // Delay before receiving so the sender actually exhausts credits.
      env.self.advance(sim::msec(2), sim::CpuUse::Idle);
      for (int i = 0; i < kFlood; ++i) {
        EXPECT_EQ(comm.recv(0, 5), pattern(128, static_cast<std::uint8_t>(i)));
      }
      EXPECT_GT(comm.creditMessages(), 0u);
    }
  });
}

TEST(MsgTest, MessagesFromSameSourceArriveInOrder) {
  runSpmd("mvia", 2, {}, [&](Communicator& comm, NodeEnv&) {
    constexpr int kMessages = 25;
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        std::vector<std::byte> m(4);
        std::memcpy(m.data(), &i, 4);
        comm.send(1, 1, m);
      }
    } else {
      for (int i = 0; i < kMessages; ++i) {
        const auto m = comm.recv(0, 1);
        int got = -1;
        std::memcpy(&got, m.data(), 4);
        EXPECT_EQ(got, i);
      }
    }
  });
}

class MsgRankSweep : public ::testing::TestWithParam<std::uint32_t> {};
INSTANTIATE_TEST_SUITE_P(Ranks, MsgRankSweep,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u));

TEST_P(MsgRankSweep, BarrierSynchronizesAllRanks) {
  const std::uint32_t n = GetParam();
  std::vector<sim::SimTime> releaseTimes(n, 0);
  std::vector<sim::SimTime> entryTimes(n, 0);
  runSpmd("clan", n, {}, [&](Communicator& comm, NodeEnv& env) {
    // Stagger arrival: rank r waits r*200us before entering the barrier.
    env.self.advance(sim::usec(200) * comm.rank(), sim::CpuUse::Idle);
    entryTimes[comm.rank()] = env.now();
    comm.barrier();
    releaseTimes[comm.rank()] = env.now();
  });
  const sim::SimTime lastEntry =
      *std::max_element(entryTimes.begin(), entryTimes.end());
  for (std::uint32_t r = 0; r < n; ++r) {
    EXPECT_GE(releaseTimes[r], lastEntry)
        << "rank " << r << " left the barrier before rank entry completed";
  }
}

TEST_P(MsgRankSweep, BroadcastDeliversFromEveryRoot) {
  const std::uint32_t n = GetParam();
  runSpmd("clan", n, {}, [&](Communicator& comm, NodeEnv&) {
    for (std::uint32_t root = 0; root < n; ++root) {
      std::vector<std::byte> data;
      if (comm.rank() == root) data = pattern(500 + root, 77);
      comm.broadcast(root, data);
      EXPECT_EQ(data, pattern(500 + root, 77)) << "root=" << root;
      comm.barrier();
    }
  });
}

TEST_P(MsgRankSweep, AllreduceSumsAcrossRanks) {
  const std::uint32_t n = GetParam();
  runSpmd("clan", n, {}, [&](Communicator& comm, NodeEnv&) {
    const double mine = 1.5 * (comm.rank() + 1);
    const double total = comm.allreduceSum(mine);
    double expected = 0;
    for (std::uint32_t r = 0; r < n; ++r) expected += 1.5 * (r + 1);
    EXPECT_DOUBLE_EQ(total, expected);

    // Vector variant.
    std::vector<double> v(8);
    std::iota(v.begin(), v.end(), static_cast<double>(comm.rank()));
    comm.allreduceSum(v);
    for (std::size_t i = 0; i < v.size(); ++i) {
      double want = 0;
      for (std::uint32_t r = 0; r < n; ++r) want += static_cast<double>(r + i);
      EXPECT_DOUBLE_EQ(v[i], want) << "element " << i;
    }
  });
}

TEST(MsgTest, BidirectionalTrafficDoesNotDeadlock) {
  runSpmd("bvia", 2, {}, [&](Communicator& comm, NodeEnv&) {
    const std::uint32_t other = 1 - comm.rank();
    for (int i = 0; i < 10; ++i) {
      comm.send(other, 1, pattern(2000, static_cast<std::uint8_t>(i)));
    }
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(comm.recv(other, 1), pattern(2000, static_cast<std::uint8_t>(i)));
    }
  });
}

TEST(MsgTest, IsendOverlapsAndCompletesInOrder) {
  runSpmd("clan", 2, {}, [&](Communicator& comm, NodeEnv&) {
    constexpr int kMessages = 12;
    if (comm.rank() == 0) {
      std::vector<Communicator::RequestId> reqs;
      for (int i = 0; i < kMessages; ++i) {
        reqs.push_back(
            comm.isend(1, 5, pattern(600, static_cast<std::uint8_t>(i))));
      }
      for (const auto id : reqs) (void)comm.wait(id);
      EXPECT_EQ(comm.outstandingRequests(), 0u);
    } else {
      for (int i = 0; i < kMessages; ++i) {
        EXPECT_EQ(comm.recv(0, 5), pattern(600, static_cast<std::uint8_t>(i)));
      }
    }
  });
}

TEST(MsgTest, IrecvMatchesBeforeAndAfterArrival) {
  runSpmd("clan", 2, {}, [&](Communicator& comm, NodeEnv& env) {
    if (comm.rank() == 0) {
      // Posted-before-arrival: the irecv waits for the wire.
      const auto early = comm.irecv(1, 1);
      EXPECT_FALSE(comm.test(early));
      EXPECT_EQ(comm.wait(early), pattern(100, 9));
      // Posted-after-arrival: the message is already queued.
      env.self.advance(sim::msec(1), sim::CpuUse::Idle);
      comm.progress();
      const auto late = comm.irecv(1, 2);
      EXPECT_TRUE(comm.test(late));
      EXPECT_EQ(comm.wait(late), pattern(50, 4));
    } else {
      comm.send(0, 1, pattern(100, 9));
      comm.send(0, 2, pattern(50, 4));
    }
  });
}

TEST(MsgTest, IsendRejectsRendezvousSizes) {
  runSpmd("clan", 2, {}, [&](Communicator& comm, NodeEnv&) {
    if (comm.rank() == 0) {
      EXPECT_THROW((void)comm.isend(1, 1, pattern(100000, 1)),
                   std::invalid_argument);
      comm.send(1, 2, pattern(8, 1));  // keep the peer's recv satisfied
    } else {
      (void)comm.recv(0, 2);
    }
  });
}

TEST(MsgTest, MixedBlockingAndNonblockingTraffic) {
  runSpmd("mvia", 2, {}, [&](Communicator& comm, NodeEnv&) {
    if (comm.rank() == 0) {
      const auto r1 = comm.isend(1, 1, pattern(256, 1));
      comm.send(1, 2, pattern(9000, 2));  // rendezvous while isend pending
      const auto r2 = comm.irecv(1, 3);
      (void)comm.wait(r1);
      EXPECT_EQ(comm.wait(r2), pattern(128, 3));
    } else {
      EXPECT_EQ(comm.recv(0, 1), pattern(256, 1));
      EXPECT_EQ(comm.recv(0, 2), pattern(9000, 2));
      comm.send(0, 3, pattern(128, 3));
    }
  });
}

TEST(MsgTest, SendrecvRingExchangeIsDeadlockSafe) {
  // Every rank sendrecvs to its right neighbour simultaneously, with
  // rendezvous-size payloads: the classic pattern that deadlocks naive
  // implementations.
  runSpmd("clan", 4, {}, [&](Communicator& comm, NodeEnv&) {
    const std::uint32_t right = (comm.rank() + 1) % comm.size();
    const std::uint32_t left = (comm.rank() + comm.size() - 1) % comm.size();
    const auto got = comm.sendrecv(
        right, 9, pattern(20000, static_cast<std::uint8_t>(comm.rank())),
        left, 9);
    EXPECT_EQ(got, pattern(20000, static_cast<std::uint8_t>(left)));
  });
}

TEST(MsgTest, WaitAllDrainsMixedRequests) {
  runSpmd("clan", 2, {}, [&](Communicator& comm, NodeEnv&) {
    if (comm.rank() == 0) {
      std::vector<Communicator::RequestId> reqs;
      for (int i = 0; i < 6; ++i) {
        reqs.push_back(
            comm.isend(1, 4, pattern(64, static_cast<std::uint8_t>(i))));
      }
      reqs.push_back(comm.irecv(1, 5));
      comm.waitAll(reqs);
      EXPECT_EQ(comm.outstandingRequests(), 0u);
    } else {
      for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(comm.recv(0, 4), pattern(64, static_cast<std::uint8_t>(i)));
      }
      comm.send(0, 5, pattern(8, 1));
    }
  });
}

TEST(MsgTest, LargeTrafficOnLossyFabricStaysIntact) {
  ClusterConfig cc = configFor("clan", 2);
  cc.lossRate = 0.03;
  cc.seed = 5;
  Cluster cluster(cc);
  std::vector<std::function<void(NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < 2; ++r) {
    programs.push_back([&, r](NodeEnv& env) {
      auto comm = Communicator::create(env, r, 2, {});
      if (r == 0) {
        comm->send(1, 3, pattern(50000, 9));
        EXPECT_EQ(comm->recv(1, 4), pattern(1000, 8));
      } else {
        EXPECT_EQ(comm->recv(0, 3), pattern(50000, 9));
        comm->send(0, 4, pattern(1000, 8));
      }
    });
  }
  cluster.run(std::move(programs));
}

}  // namespace
}  // namespace vibe
