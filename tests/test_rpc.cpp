// Tests for the RPC layer: request/reply integrity, multiple clients
// multiplexed through one server CQ, unknown methods, pipelined clients,
// and shutdown handling.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/rpc/rpc.hpp"
#include "vibe/cluster.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using upper::rpc::RpcClient;
using upper::rpc::RpcConfig;
using upper::rpc::RpcServer;

std::vector<std::byte> toBytes(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

std::string toString(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

ClusterConfig configFor(const std::string& profile, std::uint32_t nodes) {
  ClusterConfig c;
  c.profile = nic::profileByName(profile);
  c.nodes = nodes;
  return c;
}

class RpcAllProfiles : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Profiles, RpcAllProfiles,
                         ::testing::Values("mvia", "bvia", "clan"),
                         [](const auto& pi) { return pi.param; });

TEST_P(RpcAllProfiles, EchoAndTransformMethods) {
  Cluster cluster(configFor(GetParam(), 2));
  auto server = [&](NodeEnv& env) {
    RpcServer srv(env);
    srv.registerMethod(1, [](std::span<const std::byte> args) {
      return std::vector<std::byte>(args.begin(), args.end());  // echo
    });
    srv.registerMethod(2, [](std::span<const std::byte> args) {
      std::string s = toString(args);
      for (char& c : s) c = static_cast<char>(std::toupper(c));
      return toBytes(s);
    });
    srv.acceptClients(1);
    srv.serve();
    EXPECT_EQ(srv.requestsServed(), 4u);
  };
  auto client = [&](NodeEnv& env) {
    RpcClient cli(env, 0);
    EXPECT_EQ(toString(cli.call(1, toBytes("hello"))), "hello");
    EXPECT_EQ(toString(cli.call(2, toBytes("via rocks"))), "VIA ROCKS");
    EXPECT_EQ(toString(cli.call(1, toBytes(""))), "");
    const std::string big(20000, 'x');
    EXPECT_EQ(toString(cli.call(1, toBytes(big))), big);
    EXPECT_GT(cli.lastRoundTripUsec(), 0.0);
    cli.shutdown();
  };
  cluster.run({server, client});
}

TEST(RpcTest, MultipleClientsShareOneServerCq) {
  constexpr std::uint32_t kClients = 3;
  Cluster cluster(configFor("clan", kClients + 1));
  std::vector<std::function<void(NodeEnv&)>> programs;
  programs.push_back([&](NodeEnv& env) {
    RpcServer srv(env);
    srv.registerMethod(1, [](std::span<const std::byte> args) {
      // add 1 to every byte
      std::vector<std::byte> out(args.begin(), args.end());
      for (auto& b : out) b = std::byte(std::to_integer<std::uint8_t>(b) + 1);
      return out;
    });
    srv.acceptClients(kClients);
    srv.serve();
    EXPECT_EQ(srv.requestsServed(), kClients * 5u);
  });
  for (std::uint32_t c = 0; c < kClients; ++c) {
    programs.push_back([&, c](NodeEnv& env) {
      RpcClient cli(env, 0);
      for (int i = 0; i < 5; ++i) {
        std::vector<std::byte> args(100, std::byte(static_cast<std::uint8_t>(c)));
        const auto reply = cli.call(1, args);
        ASSERT_EQ(reply.size(), args.size());
        for (auto b : reply) {
          EXPECT_EQ(std::to_integer<std::uint8_t>(b), c + 1);
        }
      }
      cli.shutdown();
    });
  }
  cluster.run(std::move(programs));
}

TEST(RpcTest, UnknownMethodRaises) {
  Cluster cluster(configFor("clan", 2));
  auto server = [&](NodeEnv& env) {
    RpcServer srv(env);
    srv.registerMethod(1, [](std::span<const std::byte>) {
      return std::vector<std::byte>{};
    });
    srv.acceptClients(1);
    srv.serve();
  };
  auto client = [&](NodeEnv& env) {
    RpcClient cli(env, 0);
    EXPECT_THROW((void)cli.call(42, {}), std::runtime_error);
    cli.shutdown();
  };
  cluster.run({server, client});
}

TEST(RpcTest, ReservedShutdownMethodRejectedAtRegistration) {
  Cluster cluster(configFor("clan", 1));
  auto program = [&](NodeEnv& env) {
    RpcServer srv(env);
    EXPECT_THROW(
        srv.registerMethod(0, [](std::span<const std::byte>) {
          return std::vector<std::byte>{};
        }),
        std::invalid_argument);
  };
  cluster.run({program});
}

TEST(RpcTest, OversizeRequestRejectedClientSide) {
  Cluster cluster(configFor("clan", 2));
  auto server = [&](NodeEnv& env) {
    RpcServer srv(env);
    srv.acceptClients(1);
    srv.serve();
  };
  auto client = [&](NodeEnv& env) {
    RpcConfig cfg;
    RpcClient cli(env, 0, cfg);
    std::vector<std::byte> huge(cfg.maxMessageBytes + 1, std::byte{0});
    EXPECT_THROW((void)cli.call(1, huge), std::length_error);
    cli.shutdown();
  };
  cluster.run({server, client});
}

TEST(RpcTest, TransactionRateMatchesClientServerBenchmarkShape) {
  // A quick sanity link between the RPC layer and Fig. 7: small replies
  // sustain more calls/s than large replies.
  double smallRtt = 0;
  double largeRtt = 0;
  Cluster cluster(configFor("clan", 2));
  auto server = [&](NodeEnv& env) {
    RpcServer srv(env);
    srv.registerMethod(1, [](std::span<const std::byte> args) {
      std::uint32_t n = 0;
      std::memcpy(&n, args.data(), 4);
      return std::vector<std::byte>(n, std::byte{7});
    });
    srv.acceptClients(1);
    srv.serve();
  };
  auto client = [&](NodeEnv& env) {
    RpcClient cli(env, 0);
    auto callWithReply = [&](std::uint32_t bytes) {
      std::vector<std::byte> args(4);
      std::memcpy(args.data(), &bytes, 4);
      double total = 0;
      for (int i = 0; i < 10; ++i) {
        (void)cli.call(1, args);
        total += cli.lastRoundTripUsec();
      }
      return total / 10;
    };
    smallRtt = callWithReply(16);
    largeRtt = callWithReply(16384);
    cli.shutdown();
  };
  cluster.run({server, client});
  EXPECT_GT(largeRtt, smallRtt * 2);
}

}  // namespace
}  // namespace vibe
