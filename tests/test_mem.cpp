// Unit tests for the memory subsystem: sparse host memory, registration
// registry with protection tags, and the NIC TLB model.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "mem/host_memory.hpp"
#include "mem/memory_registry.hpp"
#include "mem/tlb.hpp"

namespace vibe::mem {
namespace {

TEST(HostMemoryTest, AllocRespectsAlignment) {
  HostMemory hm;
  const VirtAddr a = hm.alloc(10, 64);
  const VirtAddr b = hm.alloc(1, 4096);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GT(b, a);
}

TEST(HostMemoryTest, WriteReadRoundTripsAcrossPages) {
  HostMemory hm;
  const VirtAddr va = hm.alloc(3 * kPageSize, 64) + 100;  // unaligned start
  std::vector<std::byte> data(2 * kPageSize + 500);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::byte(i * 7 + 3);
  }
  hm.write(va, data);
  std::vector<std::byte> out(data.size());
  hm.read(va, out);
  EXPECT_EQ(data, out);
}

TEST(HostMemoryTest, UntouchedMemoryReadsZero) {
  HostMemory hm;
  const VirtAddr va = hm.alloc(64);
  std::array<std::byte, 16> out;
  out.fill(std::byte{0xFF});
  hm.read(va, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(hm.residentPages(), 0u);  // reads do not materialize pages
}

TEST(HostMemoryTest, FillWritesRange) {
  HostMemory hm;
  const VirtAddr va = hm.alloc(kPageSize * 2);
  hm.fill(va, std::byte{0x5A}, kPageSize + 10);
  std::array<std::byte, 2> probe;
  hm.read(va + kPageSize + 8, probe);
  EXPECT_EQ(probe[0], std::byte{0x5A});
  EXPECT_EQ(probe[1], std::byte{0x5A});
  hm.read(va + kPageSize + 10, probe);
  EXPECT_EQ(probe[0], std::byte{0});
}

TEST(PageMathTest, PagesSpanned) {
  EXPECT_EQ(pagesSpanned(0, 0), 0u);
  EXPECT_EQ(pagesSpanned(0, 1), 1u);
  EXPECT_EQ(pagesSpanned(0, kPageSize), 1u);
  EXPECT_EQ(pagesSpanned(0, kPageSize + 1), 2u);
  EXPECT_EQ(pagesSpanned(kPageSize - 1, 2), 2u);  // straddles a boundary
  EXPECT_EQ(pagesSpanned(100, 8 * kPageSize), 9u);
}

class RegistryTest : public ::testing::Test {
 protected:
  MemoryRegistry reg;
  PtagId ptag = 0;
  void SetUp() override { ptag = reg.createPtag(); }
};

TEST_F(RegistryTest, RegisterValidateDeregister) {
  MemHandle h = 0;
  ASSERT_EQ(reg.registerMem(0x1000, 4096, {ptag, false, false}, h),
            MemStatus::Ok);
  ASSERT_NE(h, 0u);
  EXPECT_EQ(reg.validate(h, 0x1000, 4096, ptag), MemStatus::Ok);
  EXPECT_EQ(reg.validate(h, 0x1800, 100, ptag), MemStatus::Ok);
  EXPECT_EQ(reg.deregisterMem(h), MemStatus::Ok);
  EXPECT_EQ(reg.validate(h, 0x1000, 10, ptag), MemStatus::InvalidHandle);
  EXPECT_EQ(reg.deregisterMem(h), MemStatus::InvalidHandle);
}

TEST_F(RegistryTest, OutOfRangeRejected) {
  MemHandle h = 0;
  ASSERT_EQ(reg.registerMem(0x1000, 100, {ptag, false, false}, h),
            MemStatus::Ok);
  EXPECT_EQ(reg.validate(h, 0x1000, 101, ptag), MemStatus::OutOfRange);
  EXPECT_EQ(reg.validate(h, 0xFFF, 10, ptag), MemStatus::OutOfRange);
  EXPECT_EQ(reg.validate(h, 0x1064, 1, ptag), MemStatus::OutOfRange);
}

TEST_F(RegistryTest, ProtectionTagEnforced) {
  const PtagId other = reg.createPtag();
  MemHandle h = 0;
  ASSERT_EQ(reg.registerMem(0x1000, 100, {ptag, false, false}, h),
            MemStatus::Ok);
  EXPECT_EQ(reg.validate(h, 0x1000, 10, other),
            MemStatus::ProtectionMismatch);
}

TEST_F(RegistryTest, RdmaRightsEnforced) {
  MemHandle plain = 0;
  MemHandle rdma = 0;
  ASSERT_EQ(reg.registerMem(0x1000, 100, {ptag, false, false}, plain),
            MemStatus::Ok);
  ASSERT_EQ(reg.registerMem(0x2000, 100, {ptag, true, true}, rdma),
            MemStatus::Ok);
  EXPECT_EQ(reg.validate(plain, 0x1000, 10, ptag, Access::RdmaWriteTarget),
            MemStatus::AccessDenied);
  EXPECT_EQ(reg.validate(plain, 0x1000, 10, ptag, Access::RdmaReadSource),
            MemStatus::AccessDenied);
  EXPECT_EQ(reg.validate(rdma, 0x2000, 10, ptag, Access::RdmaWriteTarget),
            MemStatus::Ok);
  EXPECT_EQ(reg.validate(rdma, 0x2000, 10, ptag, Access::RdmaReadSource),
            MemStatus::Ok);
}

TEST_F(RegistryTest, PtagLifecycle) {
  EXPECT_EQ(reg.destroyPtag(999), MemStatus::InvalidPtag);
  MemHandle h = 0;
  ASSERT_EQ(reg.registerMem(0x1000, 100, {ptag, false, false}, h),
            MemStatus::Ok);
  EXPECT_EQ(reg.destroyPtag(ptag), MemStatus::PtagInUse);
  ASSERT_EQ(reg.deregisterMem(h), MemStatus::Ok);
  EXPECT_EQ(reg.destroyPtag(ptag), MemStatus::Ok);
  EXPECT_EQ(reg.registerMem(0x1000, 100, {ptag, false, false}, h),
            MemStatus::InvalidPtag);
}

TEST_F(RegistryTest, ZeroLengthAndCounters) {
  MemHandle h = 0;
  EXPECT_EQ(reg.registerMem(0x1000, 0, {ptag, false, false}, h),
            MemStatus::ZeroLength);
  ASSERT_EQ(reg.registerMem(0x1000, 5000, {ptag, false, false}, h),
            MemStatus::Ok);
  EXPECT_EQ(reg.activeRegions(), 1u);
  EXPECT_EQ(reg.registeredBytes(), 5000u);
  ASSERT_EQ(reg.deregisterMem(h), MemStatus::Ok);
  EXPECT_EQ(reg.registeredBytes(), 0u);
  EXPECT_EQ(reg.totalRegistrations(), 1u);
}

TEST_F(RegistryTest, OverlappingRegistrationsAllowed) {
  MemHandle a = 0;
  MemHandle b = 0;
  ASSERT_EQ(reg.registerMem(0x1000, 4096, {ptag, false, false}, a),
            MemStatus::Ok);
  ASSERT_EQ(reg.registerMem(0x1800, 4096, {ptag, false, false}, b),
            MemStatus::Ok);
  EXPECT_EQ(reg.validate(a, 0x1800, 100, ptag), MemStatus::Ok);
  EXPECT_EQ(reg.validate(b, 0x1800, 100, ptag), MemStatus::Ok);
}

TEST(TlbTest, HitAfterInsert) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.lookup(10));
  tlb.insert(10);
  EXPECT_TRUE(tlb.lookup(10));
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, LruEviction) {
  Tlb tlb(2);
  tlb.insert(1);
  tlb.insert(2);
  EXPECT_TRUE(tlb.lookup(1));  // 1 becomes MRU
  tlb.insert(3);               // evicts 2
  EXPECT_TRUE(tlb.lookup(1));
  EXPECT_FALSE(tlb.lookup(2));
  EXPECT_TRUE(tlb.lookup(3));
}

TEST(TlbTest, InvalidateRange) {
  Tlb tlb(8);
  for (std::uint64_t p = 0; p < 6; ++p) tlb.insert(p);
  tlb.invalidateRange(2, 4);
  EXPECT_TRUE(tlb.lookup(1));
  EXPECT_FALSE(tlb.lookup(2));
  EXPECT_FALSE(tlb.lookup(3));
  EXPECT_FALSE(tlb.lookup(4));
  EXPECT_TRUE(tlb.lookup(5));
}

TEST(TlbTest, EvictionThenRangeInvalidateInteract) {
  // Eviction must not confuse the range-invalidate bookkeeping: pages that
  // were evicted are already gone, pages still resident must go, and the
  // LRU order of survivors must be intact afterwards.
  Tlb tlb(4);
  for (std::uint64_t p = 1; p <= 6; ++p) tlb.insert(p);  // 1,2 evicted
  EXPECT_EQ(tlb.size(), 4u);                             // {3,4,5,6}
  tlb.invalidateRange(1, 4);  // 1,2 already evicted; removes 3,4
  EXPECT_EQ(tlb.size(), 2u);
  EXPECT_FALSE(tlb.lookup(3));
  EXPECT_FALSE(tlb.lookup(4));
  EXPECT_TRUE(tlb.lookup(5));
  EXPECT_TRUE(tlb.lookup(6));
  // Refill: LRU must evict in the expected order (7,8 push out nothing
  // until capacity, then the oldest survivor goes first).
  tlb.insert(7);
  tlb.insert(8);
  EXPECT_EQ(tlb.size(), 4u);
  tlb.insert(9);  // evicts 5 (LRU after the lookups above)
  EXPECT_FALSE(tlb.lookup(5));
  EXPECT_TRUE(tlb.lookup(6));
  EXPECT_TRUE(tlb.lookup(9));
}

TEST(TlbTest, InvalidateRangeOutsideHullIsNoOp) {
  Tlb tlb(4);
  for (std::uint64_t p = 100; p < 104; ++p) tlb.insert(p);
  tlb.invalidateRange(0, 99);       // entirely below — O(1) early-out
  tlb.invalidateRange(105, 1'000'000'000);  // entirely above
  tlb.invalidateRange(50, 10);      // inverted range
  EXPECT_EQ(tlb.size(), 4u);
  for (std::uint64_t p = 100; p < 104; ++p) EXPECT_TRUE(tlb.lookup(p));
}

TEST(TlbTest, WideAndNarrowInvalidatePathsAgree) {
  // The narrow range takes the per-page probe path, the wide one the LRU
  // scan; both must produce the same result.
  Tlb narrow(8), wide(8);
  for (std::uint64_t p = 0; p < 8; ++p) {
    narrow.insert(p * 10);
    wide.insert(p * 10);
  }
  narrow.invalidateRange(20, 21);        // span 2 <= size: probe path
  wide.invalidateRange(20, 1'000'000);   // span > size: scan path
  EXPECT_FALSE(narrow.lookup(20));
  EXPECT_FALSE(wide.lookup(20));
  EXPECT_TRUE(narrow.lookup(30));
  EXPECT_FALSE(wide.lookup(30));
  EXPECT_EQ(narrow.size(), 7u);
  EXPECT_EQ(wide.size(), 2u);  // 0 and 10 survive
}

TEST(TlbTest, RepeatedDeregistrationSweepIsCheap) {
  // The Fig. 2 extended sweep shape: register/deregister a huge region
  // while the TLB holds unrelated pages. Before the hull fast path this
  // walked the whole LRU per call.
  Tlb tlb(1024);
  for (std::uint64_t p = 0; p < 1024; ++p) tlb.insert(p);
  for (int sweep = 0; sweep < 10000; ++sweep) {
    tlb.invalidateRange(1u << 20, (1u << 20) + 8192);  // never cached
  }
  EXPECT_EQ(tlb.size(), 1024u);
}

TEST(TlbTest, ZeroCapacityNeverHits) {
  Tlb tlb(0);
  tlb.insert(1);
  EXPECT_FALSE(tlb.lookup(1));
  EXPECT_EQ(tlb.size(), 0u);
}

TEST(TlbTest, FlushEmptiesEverything) {
  Tlb tlb(8);
  for (std::uint64_t p = 0; p < 8; ++p) tlb.insert(p);
  EXPECT_EQ(tlb.size(), 8u);
  tlb.flush();
  EXPECT_EQ(tlb.size(), 0u);
  EXPECT_FALSE(tlb.lookup(0));
}

}  // namespace
}  // namespace vibe::mem
