// Tests for the RAII layer and the FirmVIA extension profile.
#include <gtest/gtest.h>

#include <memory>

#include "nic/profiles.hpp"
#include "vibe/cluster.hpp"
#include "vibe/datatransfer.hpp"
#include "vipl/raii.hpp"
#include "vipl/vipl.hpp"

namespace vibe {
namespace {

using suite::Cluster;
using suite::ClusterConfig;
using suite::NodeEnv;
using vipl::Provider;
using vipl::RegisteredBuffer;
using vipl::ScopedCq;
using vipl::ScopedPtag;
using vipl::ScopedVi;
using vipl::VipResult;

ClusterConfig clanConfig() {
  ClusterConfig c;
  c.profile = nic::clanProfile();
  return c;
}

TEST(RaiiTest, BufferDeregistersOnScopeExit) {
  Cluster cluster(clanConfig());
  auto program = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    ScopedPtag ptag(nic);
    {
      RegisteredBuffer buf(nic, 8192, ptag.get());
      ASSERT_TRUE(buf.ok());
      EXPECT_EQ(nic.registry().activeRegions(), 1u);
      buf.write(0, std::vector<std::byte>(16, std::byte{0x7E}));
      EXPECT_EQ(buf.read(0, 16),
                std::vector<std::byte>(16, std::byte{0x7E}));
    }
    EXPECT_EQ(nic.registry().activeRegions(), 0u);
    // The ptag can now be destroyed cleanly (no regions reference it).
  };
  cluster.run({program, nullptr});
}

TEST(RaiiTest, PtagDestructionOrderIsSafe) {
  Cluster cluster(clanConfig());
  auto program = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    // Destruction order (reverse of declaration) deregisters the buffer
    // before the ptag — the required order.
    ScopedPtag ptag(nic);
    RegisteredBuffer buf(nic, 4096, ptag.get());
    ASSERT_TRUE(buf.ok());
  };
  cluster.run({program, nullptr});
}

TEST(RaiiTest, ScopedViDisconnectsOnDestruction) {
  Cluster cluster(clanConfig());
  bool serverSawDisconnect = false;
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    ScopedPtag ptag(nic);
    vipl::VipViAttributes attrs;
    attrs.ptag = ptag.get();
    attrs.reliabilityLevel = nic::Reliability::ReliableDelivery;
    {
      ScopedVi vi(nic, attrs);
      ASSERT_TRUE(vi.ok());
      ASSERT_EQ(vipl::VipConnectRequest(nic, vi.get(), {1, 5}, sim::kSecond),
                VipResult::VIP_SUCCESS);
      EXPECT_EQ(vi->state(), vipl::ViState::Connected);
    }  // destructor disconnects + destroys
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    ScopedPtag ptag(nic);
    vipl::VipViAttributes attrs;
    attrs.ptag = ptag.get();
    attrs.reliabilityLevel = nic::Reliability::ReliableDelivery;
    ScopedVi vi(nic, attrs);
    vipl::PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, 5}, sim::kSecond, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi.get()),
              VipResult::VIP_SUCCESS);
    while (vi->state() == vipl::ViState::Connected) {
      env.self.advance(sim::usec(20), sim::CpuUse::Idle);
    }
    serverSawDisconnect = true;
  };
  cluster.run({client, server});
  EXPECT_TRUE(serverSawDisconnect);
}

TEST(RaiiTest, ScopedCqRoundTrip) {
  Cluster cluster(clanConfig());
  auto program = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    ScopedCq cq(nic, 32);
    ASSERT_TRUE(cq.ok());
    EXPECT_EQ(cq.get()->capacity(), 32u);
  };
  cluster.run({program, nullptr});
}

TEST(RaiiTest, EndToEndPingWithRaiiOnly) {
  Cluster cluster(clanConfig());
  auto client = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    ScopedPtag ptag(nic);
    RegisteredBuffer buf(nic, 4096, ptag.get());
    vipl::VipViAttributes attrs;
    attrs.ptag = ptag.get();
    attrs.reliabilityLevel = nic::Reliability::ReliableDelivery;
    ScopedVi vi(nic, attrs);
    ASSERT_EQ(vipl::VipConnectRequest(nic, vi.get(), {1, 6}, sim::kSecond),
              VipResult::VIP_SUCCESS);
    auto d = buf.sendDesc(128);
    ASSERT_EQ(vipl::VipPostSend(nic, vi.get(), &d), VipResult::VIP_SUCCESS);
    vipl::VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollSend(vi.get(), done), VipResult::VIP_SUCCESS);
  };
  auto server = [&](NodeEnv& env) {
    Provider& nic = env.nic;
    ScopedPtag ptag(nic);
    RegisteredBuffer buf(nic, 4096, ptag.get());
    vipl::VipViAttributes attrs;
    attrs.ptag = ptag.get();
    attrs.reliabilityLevel = nic::Reliability::ReliableDelivery;
    ScopedVi vi(nic, attrs);
    auto d = buf.recvDesc();
    ASSERT_EQ(vipl::VipPostRecv(nic, vi.get(), &d), VipResult::VIP_SUCCESS);
    vipl::PendingConn conn;
    ASSERT_EQ(vipl::VipConnectWait(nic, {1, 6}, sim::kSecond, conn),
              VipResult::VIP_SUCCESS);
    ASSERT_EQ(vipl::VipConnectAccept(nic, conn, vi.get()),
              VipResult::VIP_SUCCESS);
    vipl::VipDescriptor* done = nullptr;
    ASSERT_EQ(nic.pollRecv(vi.get(), done), VipResult::VIP_SUCCESS);
    EXPECT_EQ(done->cs.length, 128u);
  };
  cluster.run({client, server});
}

// --- FirmVIA extension profile --------------------------------------------

TEST(FirmViaProfileTest, LandsBetweenBviaAndClan) {
  suite::TransferConfig cfg;
  cfg.msgBytes = 4;
  ClusterConfig firm;
  firm.profile = nic::profileByName("firmvia");
  ClusterConfig bvia;
  bvia.profile = nic::bviaProfile();
  ClusterConfig clan = clanConfig();
  const double f = suite::runPingPong(firm, cfg).latencyUsec;
  const double b = suite::runPingPong(bvia, cfg).latencyUsec;
  const double c = suite::runPingPong(clan, cfg).latencyUsec;
  EXPECT_LT(c, f);  // hardware still fastest
  EXPECT_LT(f, b);  // but FirmVIA's faster firmware beats LANai-4 BVIA
  EXPECT_NEAR(f, 18, 6);  // published FirmVIA anchor ~18 us
}

TEST(FirmViaProfileTest, ReuseInsensitiveAndViSensitive) {
  ClusterConfig firm;
  firm.profile = nic::profileByName("firmvia");
  suite::TransferConfig base;
  base.msgBytes = 12288;
  const double full = suite::runPingPong(firm, base).latencyUsec;
  suite::TransferConfig noReuse = base;
  noReuse.reusePercent = 0;
  noReuse.bufferPool = 160;
  // Adapter-resident tables: no reuse sensitivity...
  EXPECT_NEAR(suite::runPingPong(firm, noReuse).latencyUsec, full, 0.5);
  // ...but still a firmware poller: VI count matters (mildly).
  suite::TransferConfig manyVis = base;
  manyVis.extraVis = 31;
  const double vis = suite::runPingPong(firm, manyVis).latencyUsec;
  // 31 extra VIs x 0.35 us/VI scan, paid once per one-way trip.
  EXPECT_NEAR(vis - full, 31 * 0.35, 1.5);
}

TEST(IbaProfileTest, GenerationalLeapAndNativeRdmaRead) {
  // The IBA model must dominate every paper-era implementation...
  suite::TransferConfig cfg;
  cfg.msgBytes = 1024;
  ClusterConfig iba;
  iba.profile = nic::profileByName("iba");
  const auto i = suite::runPingPong(iba, cfg);
  const auto c = suite::runPingPong(clanConfig(), cfg);
  EXPECT_LT(i.latencyUsec, c.latencyUsec / 3);
  const auto ibw = suite::runBandwidth(iba, cfg);
  EXPECT_GT(ibw.bandwidthMBps, 400);
  // ...and it is the only profile with native RDMA read.
  EXPECT_TRUE(iba.profile.supportsRdmaRead);
  EXPECT_FALSE(nic::clanProfile().supportsRdmaRead);
}

}  // namespace
}  // namespace vibe
